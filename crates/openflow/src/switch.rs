//! A flow-table OpenFlow 1.0 switch model.
//!
//! The simulator instantiates one [`SwitchModel`] per emulated switch. The
//! model speaks the wire format of [`crate::wire`]: feed it encoded
//! controller-to-switch messages with [`SwitchModel::handle_bytes`] and it
//! returns encoded replies — exactly what a hardware switch would put on the
//! wire.

use crate::wire::{
    Action, FlowModCommand, FlowStatsEntry, Match, OfMessage, PacketInReason, PhyPort, WireError,
};

/// One installed flow.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowEntry {
    /// Match.
    pub match_: Match,
    /// Priority (higher wins).
    pub priority: u16,
    /// Actions.
    pub actions: Vec<Action>,
    /// Controller cookie.
    pub cookie: u64,
    /// Packets accounted to this flow.
    pub packet_count: u64,
    /// Bytes accounted to this flow.
    pub byte_count: u64,
    /// Installation time (s, switch-local).
    pub installed_at_sec: u32,
}

/// A simulated OpenFlow switch.
#[derive(Debug)]
pub struct SwitchModel {
    dpid: u64,
    ports: Vec<PhyPort>,
    flows: Vec<FlowEntry>,
    now_sec: u32,
    next_xid: u32,
}

impl SwitchModel {
    /// A switch with datapath id `dpid` and `n_ports` ports.
    pub fn new(dpid: u64, n_ports: u16) -> Self {
        let ports = (1..=n_ports)
            .map(|p| {
                let mut hw = [0u8; 6];
                hw[..4].copy_from_slice(&(dpid as u32).to_be_bytes());
                hw[4..].copy_from_slice(&p.to_be_bytes());
                PhyPort {
                    port_no: p,
                    hw_addr: hw,
                    name: format!("s{dpid}-eth{p}"),
                }
            })
            .collect();
        SwitchModel {
            dpid,
            ports,
            flows: Vec::new(),
            now_sec: 0,
            next_xid: 1,
        }
    }

    /// The datapath id.
    pub fn dpid(&self) -> u64 {
        self.dpid
    }

    /// Installed flows (inspection).
    pub fn flows(&self) -> &[FlowEntry] {
        &self.flows
    }

    /// Advances the switch's local clock (stats durations).
    pub fn advance_time(&mut self, secs: u32) {
        self.now_sec += secs;
    }

    fn xid(&mut self) -> u32 {
        let x = self.next_xid;
        self.next_xid += 1;
        x
    }

    /// The HELLO the switch sends on connect.
    pub fn hello(&mut self) -> Vec<u8> {
        OfMessage::Hello { xid: self.xid() }.encode()
    }

    /// Handles one encoded controller-to-switch message and returns the
    /// encoded replies the switch would send.
    pub fn handle_bytes(&mut self, bytes: &[u8]) -> Result<Vec<Vec<u8>>, WireError> {
        let msg = OfMessage::decode(bytes)?;
        Ok(self.handle(msg).into_iter().map(|m| m.encode()).collect())
    }

    /// Handles a decoded message (the logic behind [`SwitchModel::handle_bytes`]).
    pub fn handle(&mut self, msg: OfMessage) -> Vec<OfMessage> {
        match msg {
            OfMessage::Hello { .. } => Vec::new(),
            OfMessage::EchoRequest { xid, data } => vec![OfMessage::EchoReply { xid, data }],
            OfMessage::FeaturesRequest { xid } => vec![OfMessage::FeaturesReply {
                xid,
                datapath_id: self.dpid,
                n_buffers: 256,
                n_tables: 1,
                capabilities: 0x0000_0001, // FLOW_STATS
                ports: self.ports.clone(),
            }],
            OfMessage::FlowMod {
                match_,
                cookie,
                command,
                priority,
                actions,
                ..
            } => {
                self.apply_flow_mod(match_, cookie, command, priority, actions);
                Vec::new()
            }
            OfMessage::FlowStatsRequest { xid, match_, .. } => {
                let flows = self
                    .flows
                    .iter()
                    .filter(|f| match_.covers(&f.match_) || match_ == Match::any())
                    .map(|f| FlowStatsEntry {
                        table_id: 0,
                        match_: f.match_,
                        duration_sec: self.now_sec.saturating_sub(f.installed_at_sec),
                        priority: f.priority,
                        cookie: f.cookie,
                        packet_count: f.packet_count,
                        byte_count: f.byte_count,
                        actions: f.actions.clone(),
                    })
                    .collect();
                vec![OfMessage::FlowStatsReply { xid, flows }]
            }
            OfMessage::PacketOut { .. } => Vec::new(), // the sim handles forwarding
            OfMessage::EchoReply { .. }
            | OfMessage::FeaturesReply { .. }
            | OfMessage::PacketIn { .. }
            | OfMessage::FlowStatsReply { .. }
            | OfMessage::PortStatus { .. } => Vec::new(), // switch-to-controller only
            OfMessage::Error { .. } => Vec::new(),
        }
    }

    fn apply_flow_mod(
        &mut self,
        match_: Match,
        cookie: u64,
        command: FlowModCommand,
        priority: u16,
        actions: Vec<Action>,
    ) {
        match command {
            FlowModCommand::Add => {
                // Identical match+priority replaces (per spec with
                // OFPFF_CHECK_OVERLAP unset, ADD overwrites).
                if let Some(f) = self
                    .flows
                    .iter_mut()
                    .find(|f| f.match_ == match_ && f.priority == priority)
                {
                    f.actions = actions;
                    f.cookie = cookie;
                    return;
                }
                self.flows.push(FlowEntry {
                    match_,
                    priority,
                    actions,
                    cookie,
                    packet_count: 0,
                    byte_count: 0,
                    installed_at_sec: self.now_sec,
                });
                // Keep highest priority first for lookup.
                self.flows.sort_by_key(|f| std::cmp::Reverse(f.priority));
            }
            FlowModCommand::Modify => {
                let mut touched = false;
                for f in self.flows.iter_mut().filter(|f| match_.covers(&f.match_)) {
                    f.actions = actions.clone();
                    f.cookie = cookie;
                    touched = true;
                }
                if !touched {
                    // Per spec, MODIFY with no match acts like ADD.
                    self.apply_flow_mod(match_, cookie, FlowModCommand::Add, priority, actions);
                }
            }
            FlowModCommand::Delete => {
                self.flows.retain(|f| !match_.covers(&f.match_));
            }
        }
    }

    /// Runs a packet (expressed as an exact-match header + size) through the
    /// flow table. Returns the actions of the matching flow, or a `PacketIn`
    /// to punt to the controller on table miss.
    pub fn process_packet(
        &mut self,
        header: &Match,
        bytes: usize,
    ) -> Result<Vec<Action>, OfMessage> {
        let xid = self.xid();
        for f in self.flows.iter_mut() {
            if f.match_.covers(header) {
                f.packet_count += 1;
                f.byte_count += bytes as u64;
                return Ok(f.actions.clone());
            }
        }
        Err(OfMessage::PacketIn {
            xid,
            buffer_id: u32::MAX,
            total_len: bytes as u16,
            in_port: header.in_port,
            reason: PacketInReason::NoMatch,
            data: encode_header_as_packet(header),
        })
    }

    /// Directly accounts traffic to the flow matching `header` (used by the
    /// simulator's fluid flow model, which doesn't emit per-packet events).
    pub fn account_traffic(&mut self, header: &Match, packets: u64, bytes: u64) -> bool {
        for f in self.flows.iter_mut() {
            if f.match_.covers(header) {
                f.packet_count += packets;
                f.byte_count += bytes;
                return true;
            }
        }
        false
    }
}

/// Renders a header as a minimal Ethernet/IPv4 packet so `PacketIn.data`
/// carries parseable bytes.
pub fn encode_header_as_packet(h: &Match) -> Vec<u8> {
    let mut pkt = Vec::with_capacity(34);
    pkt.extend_from_slice(&h.dl_dst);
    pkt.extend_from_slice(&h.dl_src);
    pkt.extend_from_slice(&0x0800u16.to_be_bytes());
    // Minimal IPv4 header.
    pkt.push(0x45);
    pkt.push(h.nw_tos);
    pkt.extend_from_slice(&20u16.to_be_bytes());
    pkt.extend_from_slice(&[0; 5]);
    pkt.push(h.nw_proto);
    pkt.extend_from_slice(&[0, 0]); // checksum (unset in the model)
    pkt.extend_from_slice(&h.nw_src.to_be_bytes());
    pkt.extend_from_slice(&h.nw_dst.to_be_bytes());
    pkt
}

/// Parses the destination/source MACs out of a packet produced by
/// [`encode_header_as_packet`] (what a learning switch needs).
pub fn parse_macs(data: &[u8]) -> Option<([u8; 6], [u8; 6])> {
    if data.len() < 12 {
        return None;
    }
    let mut dst = [0u8; 6];
    let mut src = [0u8; 6];
    dst.copy_from_slice(&data[0..6]);
    src.copy_from_slice(&data[6..12]);
    Some((dst, src))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::OFPP_CONTROLLER;

    fn flow_mod(match_: Match, priority: u16, port: u16) -> OfMessage {
        OfMessage::FlowMod {
            xid: 1,
            match_,
            cookie: 0,
            command: FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority,
            actions: vec![Action::Output { port, max_len: 0 }],
        }
    }

    #[test]
    fn features_reply_describes_switch() {
        let mut sw = SwitchModel::new(42, 4);
        let replies = sw.handle(OfMessage::FeaturesRequest { xid: 9 });
        match &replies[0] {
            OfMessage::FeaturesReply {
                datapath_id,
                ports,
                xid,
                ..
            } => {
                assert_eq!(*datapath_id, 42);
                assert_eq!(ports.len(), 4);
                assert_eq!(*xid, 9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn echo_is_answered_with_same_payload() {
        let mut sw = SwitchModel::new(1, 1);
        let replies = sw.handle(OfMessage::EchoRequest {
            xid: 3,
            data: vec![9, 8],
        });
        assert_eq!(
            replies,
            vec![OfMessage::EchoReply {
                xid: 3,
                data: vec![9, 8]
            }]
        );
    }

    #[test]
    fn table_miss_punts_to_controller() {
        let mut sw = SwitchModel::new(1, 2);
        let header = Match {
            wildcards: 0,
            in_port: 1,
            ..Default::default()
        };
        let err = sw.process_packet(&header, 64).unwrap_err();
        match err {
            OfMessage::PacketIn {
                reason, in_port, ..
            } => {
                assert_eq!(reason, PacketInReason::NoMatch);
                assert_eq!(in_port, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn installed_flow_matches_and_counts() {
        let mut sw = SwitchModel::new(1, 2);
        let m = Match::nw_pair(10, 20);
        sw.handle(flow_mod(m, 10, 2));
        let header = Match {
            wildcards: 0,
            nw_src: 10,
            nw_dst: 20,
            ..Default::default()
        };
        let actions = sw.process_packet(&header, 100).unwrap();
        assert_eq!(
            actions,
            vec![Action::Output {
                port: 2,
                max_len: 0
            }]
        );
        assert_eq!(sw.flows()[0].packet_count, 1);
        assert_eq!(sw.flows()[0].byte_count, 100);
    }

    #[test]
    fn higher_priority_wins() {
        let mut sw = SwitchModel::new(1, 2);
        sw.handle(flow_mod(Match::any(), 1, 1));
        sw.handle(flow_mod(Match::nw_pair(10, 20), 100, 2));
        let header = Match {
            wildcards: 0,
            nw_src: 10,
            nw_dst: 20,
            ..Default::default()
        };
        let actions = sw.process_packet(&header, 60).unwrap();
        assert_eq!(
            actions,
            vec![Action::Output {
                port: 2,
                max_len: 0
            }]
        );
    }

    #[test]
    fn add_same_match_replaces() {
        let mut sw = SwitchModel::new(1, 2);
        sw.handle(flow_mod(Match::any(), 5, 1));
        sw.handle(flow_mod(Match::any(), 5, 3));
        assert_eq!(sw.flows().len(), 1);
        assert_eq!(
            sw.flows()[0].actions,
            vec![Action::Output {
                port: 3,
                max_len: 0
            }]
        );
    }

    #[test]
    fn delete_removes_covered_flows() {
        let mut sw = SwitchModel::new(1, 2);
        sw.handle(flow_mod(Match::nw_pair(1, 2), 5, 1));
        sw.handle(flow_mod(Match::nw_pair(3, 4), 5, 2));
        sw.handle(OfMessage::FlowMod {
            xid: 1,
            match_: Match::any(),
            cookie: 0,
            command: FlowModCommand::Delete,
            idle_timeout: 0,
            hard_timeout: 0,
            priority: 0,
            actions: vec![],
        });
        assert!(sw.flows().is_empty());
    }

    #[test]
    fn stats_reply_reports_counters_over_the_wire() {
        let mut sw = SwitchModel::new(7, 2);
        sw.handle(flow_mod(Match::nw_pair(1, 2), 5, 1));
        let header = Match {
            wildcards: 0,
            nw_src: 1,
            nw_dst: 2,
            ..Default::default()
        };
        sw.process_packet(&header, 500).unwrap();
        sw.advance_time(3);

        let req = OfMessage::FlowStatsRequest {
            xid: 77,
            match_: Match::any(),
            table_id: 0xFF,
        };
        let replies = sw.handle_bytes(&req.encode()).unwrap();
        assert_eq!(replies.len(), 1);
        let reply = OfMessage::decode(&replies[0]).unwrap();
        match reply {
            OfMessage::FlowStatsReply { xid, flows } => {
                assert_eq!(xid, 77);
                assert_eq!(flows.len(), 1);
                assert_eq!(flows[0].byte_count, 500);
                assert_eq!(flows[0].duration_sec, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn account_traffic_feeds_counters() {
        let mut sw = SwitchModel::new(1, 2);
        sw.handle(flow_mod(Match::nw_pair(1, 2), 5, 1));
        let header = Match {
            wildcards: 0,
            nw_src: 1,
            nw_dst: 2,
            ..Default::default()
        };
        assert!(sw.account_traffic(&header, 10, 1000));
        assert!(!sw.account_traffic(
            &Match {
                wildcards: 0,
                nw_src: 9,
                nw_dst: 9,
                ..Default::default()
            },
            1,
            1
        ));
        assert_eq!(sw.flows()[0].packet_count, 10);
    }

    #[test]
    fn packet_header_roundtrips_macs() {
        let h = Match {
            dl_src: [1, 1, 1, 1, 1, 1],
            dl_dst: [2, 2, 2, 2, 2, 2],
            ..Default::default()
        };
        let pkt = encode_header_as_packet(&h);
        let (dst, src) = parse_macs(&pkt).unwrap();
        assert_eq!(dst, [2, 2, 2, 2, 2, 2]);
        assert_eq!(src, [1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn controller_bound_messages_are_ignored_by_switch() {
        let mut sw = SwitchModel::new(1, 1);
        assert!(sw
            .handle(OfMessage::PacketIn {
                xid: 1,
                buffer_id: 0,
                total_len: 0,
                in_port: 1,
                reason: PacketInReason::NoMatch,
                data: vec![]
            })
            .is_empty());
        let _ = OFPP_CONTROLLER;
    }
}
