//! OpenFlow 1.0 wire codec (subset).
//!
//! Every message is `[version u8][type u8][length u16][xid u32]` followed by
//! a type-specific body, all fields big-endian per the OpenFlow 1.0.0
//! specification. The subset implemented here covers what an SDN control
//! plane needs: handshake, liveness, packet punting/injection, flow
//! programming, flow statistics and port status.

use bytes::{Buf, BufMut, BytesMut};

/// The protocol version this codec speaks.
pub const OFP_VERSION: u8 = 0x01;

const OFPT_HELLO: u8 = 0;
const OFPT_ERROR: u8 = 1;
const OFPT_ECHO_REQUEST: u8 = 2;
const OFPT_ECHO_REPLY: u8 = 3;
const OFPT_FEATURES_REQUEST: u8 = 5;
const OFPT_FEATURES_REPLY: u8 = 6;
const OFPT_PACKET_IN: u8 = 10;
const OFPT_PORT_STATUS: u8 = 12;
const OFPT_PACKET_OUT: u8 = 13;
const OFPT_FLOW_MOD: u8 = 14;
const OFPT_STATS_REQUEST: u8 = 16;
const OFPT_STATS_REPLY: u8 = 17;

const OFPST_FLOW: u16 = 1;
const OFPAT_OUTPUT: u16 = 0;

/// Errors raised while encoding or decoding OpenFlow messages.
#[derive(Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the message did.
    Truncated,
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown or unsupported message type.
    BadType(u8),
    /// A length field is inconsistent.
    BadLength,
    /// An action or stats type we don't support.
    Unsupported(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated OpenFlow message"),
            WireError::BadVersion(v) => write!(f, "unsupported OpenFlow version {v:#x}"),
            WireError::BadType(t) => write!(f, "unsupported OpenFlow message type {t}"),
            WireError::BadLength => write!(f, "inconsistent OpenFlow length field"),
            WireError::Unsupported(what) => write!(f, "unsupported OpenFlow element: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// An OpenFlow 1.0 flow match (ofp_match, 40 bytes).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Default, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct Match {
    /// Wildcard bits (1 = field is wildcarded), per spec.
    pub wildcards: u32,
    /// Ingress port.
    pub in_port: u16,
    /// Source MAC.
    pub dl_src: [u8; 6],
    /// Destination MAC.
    pub dl_dst: [u8; 6],
    /// VLAN id.
    pub dl_vlan: u16,
    /// VLAN priority.
    pub dl_vlan_pcp: u8,
    /// Ethertype.
    pub dl_type: u16,
    /// IP ToS.
    pub nw_tos: u8,
    /// IP protocol.
    pub nw_proto: u8,
    /// Source IPv4.
    pub nw_src: u32,
    /// Destination IPv4.
    pub nw_dst: u32,
    /// Source transport port.
    pub tp_src: u16,
    /// Destination transport port.
    pub tp_dst: u16,
}

/// Wildcard-all constant (every field ignored).
pub const OFPFW_ALL: u32 = 0x003F_FFFF;

impl Match {
    /// A match that matches everything.
    pub fn any() -> Self {
        Match {
            wildcards: OFPFW_ALL,
            ..Default::default()
        }
    }

    /// An exact match on destination MAC (other fields wildcarded).
    pub fn dl_dst_exact(mac: [u8; 6]) -> Self {
        // Bit 3 (OFPFW_DL_DST) cleared.
        Match {
            wildcards: OFPFW_ALL & !(1 << 3),
            dl_dst: mac,
            ..Default::default()
        }
    }

    /// An exact match on (source, destination) IPv4 (other fields wildcarded).
    pub fn nw_pair(nw_src: u32, nw_dst: u32) -> Self {
        // Clear all 6 bits of each nw_src/nw_dst mask field: 0 = exact.
        let wildcards = OFPFW_ALL & !(0x3F << 8) & !(0x3F << 14);
        Match {
            wildcards,
            nw_src,
            nw_dst,
            ..Default::default()
        }
    }

    /// Whether a concrete packet header (expressed as an exact `Match`)
    /// satisfies this (possibly wildcarded) match.
    pub fn covers(&self, pkt: &Match) -> bool {
        let w = self.wildcards;
        let nw_src_bits = ((w >> 8) & 0x3F).min(32);
        let nw_dst_bits = ((w >> 14) & 0x3F).min(32);
        let src_mask = if nw_src_bits >= 32 {
            0
        } else {
            u32::MAX << nw_src_bits
        };
        let dst_mask = if nw_dst_bits >= 32 {
            0
        } else {
            u32::MAX << nw_dst_bits
        };
        (w & 1 != 0 || self.in_port == pkt.in_port)
            && (w & (1 << 1) != 0 || self.dl_vlan == pkt.dl_vlan)
            && (w & (1 << 2) != 0 || self.dl_src == pkt.dl_src)
            && (w & (1 << 3) != 0 || self.dl_dst == pkt.dl_dst)
            && (w & (1 << 4) != 0 || self.dl_type == pkt.dl_type)
            && (w & (1 << 5) != 0 || self.nw_proto == pkt.nw_proto)
            && (w & (1 << 6) != 0 || self.tp_src == pkt.tp_src)
            && (w & (1 << 7) != 0 || self.tp_dst == pkt.tp_dst)
            && (self.nw_src & src_mask) == (pkt.nw_src & src_mask)
            && (self.nw_dst & dst_mask) == (pkt.nw_dst & dst_mask)
            && (w & (1 << 20) != 0 || self.dl_vlan_pcp == pkt.dl_vlan_pcp)
            && (w & (1 << 21) != 0 || self.nw_tos == pkt.nw_tos)
    }

    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32(self.wildcards);
        buf.put_u16(self.in_port);
        buf.put_slice(&self.dl_src);
        buf.put_slice(&self.dl_dst);
        buf.put_u16(self.dl_vlan);
        buf.put_u8(self.dl_vlan_pcp);
        buf.put_u8(0); // pad
        buf.put_u16(self.dl_type);
        buf.put_u8(self.nw_tos);
        buf.put_u8(self.nw_proto);
        buf.put_slice(&[0, 0]); // pad
        buf.put_u32(self.nw_src);
        buf.put_u32(self.nw_dst);
        buf.put_u16(self.tp_src);
        buf.put_u16(self.tp_dst);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        if buf.remaining() < 40 {
            return Err(WireError::Truncated);
        }
        let wildcards = buf.get_u32();
        let in_port = buf.get_u16();
        let mut dl_src = [0u8; 6];
        buf.copy_to_slice(&mut dl_src);
        let mut dl_dst = [0u8; 6];
        buf.copy_to_slice(&mut dl_dst);
        let dl_vlan = buf.get_u16();
        let dl_vlan_pcp = buf.get_u8();
        buf.advance(1);
        let dl_type = buf.get_u16();
        let nw_tos = buf.get_u8();
        let nw_proto = buf.get_u8();
        buf.advance(2);
        let nw_src = buf.get_u32();
        let nw_dst = buf.get_u32();
        let tp_src = buf.get_u16();
        let tp_dst = buf.get_u16();
        Ok(Match {
            wildcards,
            in_port,
            dl_src,
            dl_dst,
            dl_vlan,
            dl_vlan_pcp,
            dl_type,
            nw_tos,
            nw_proto,
            nw_src,
            nw_dst,
            tp_src,
            tp_dst,
        })
    }
}

/// Flow actions (subset: output).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Action {
    /// Forward to a port (`OFPAT_OUTPUT`).
    Output {
        /// Egress port (or a reserved port like `OFPP_CONTROLLER` 0xFFFD).
        port: u16,
        /// Max bytes to send to the controller when port is CONTROLLER.
        max_len: u16,
    },
}

/// The reserved CONTROLLER port.
pub const OFPP_CONTROLLER: u16 = 0xFFFD;
/// The reserved FLOOD port.
pub const OFPP_FLOOD: u16 = 0xFFFB;

impl Action {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Action::Output { port, max_len } => {
                buf.put_u16(OFPAT_OUTPUT);
                buf.put_u16(8);
                buf.put_u16(*port);
                buf.put_u16(*max_len);
            }
        }
    }

    fn decode_list(mut buf: &[u8]) -> Result<Vec<Action>, WireError> {
        let mut actions = Vec::new();
        while buf.remaining() >= 4 {
            let ty = buf.get_u16();
            let len = buf.get_u16() as usize;
            if len < 4 || buf.remaining() < len - 4 {
                return Err(WireError::BadLength);
            }
            match ty {
                OFPAT_OUTPUT => {
                    if len != 8 {
                        return Err(WireError::BadLength);
                    }
                    let port = buf.get_u16();
                    let max_len = buf.get_u16();
                    actions.push(Action::Output { port, max_len });
                }
                _ => {
                    // Skip unknown action types (forward compatible).
                    buf.advance(len - 4);
                }
            }
        }
        Ok(actions)
    }

    fn encoded_list_len(actions: &[Action]) -> usize {
        actions.len() * 8
    }
}

/// FLOW_MOD commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FlowModCommand {
    /// Add a new flow.
    Add,
    /// Modify matching flows.
    Modify,
    /// Delete matching flows.
    Delete,
}

impl FlowModCommand {
    fn to_u16(self) -> u16 {
        match self {
            FlowModCommand::Add => 0,
            FlowModCommand::Modify => 1,
            FlowModCommand::Delete => 3,
        }
    }

    fn from_u16(v: u16) -> Result<Self, WireError> {
        match v {
            0 => Ok(FlowModCommand::Add),
            1 | 2 => Ok(FlowModCommand::Modify),
            3 | 4 => Ok(FlowModCommand::Delete),
            _ => Err(WireError::Unsupported("flow_mod command")),
        }
    }
}

/// Why a packet was punted to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PacketInReason {
    /// No matching flow entry.
    NoMatch,
    /// An action explicitly sent it.
    Action,
}

/// A physical port description (subset of ofp_phy_port; 48 bytes on wire).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PhyPort {
    /// Port number.
    pub port_no: u16,
    /// MAC address.
    pub hw_addr: [u8; 6],
    /// Port name (up to 16 bytes).
    pub name: String,
}

impl PhyPort {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u16(self.port_no);
        buf.put_slice(&self.hw_addr);
        let mut name = [0u8; 16];
        let bytes = self.name.as_bytes();
        let n = bytes.len().min(15);
        name[..n].copy_from_slice(&bytes[..n]);
        buf.put_slice(&name);
        // config, state, curr, advertised, supported, peer
        buf.put_slice(&[0u8; 24]);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        if buf.remaining() < 48 {
            return Err(WireError::Truncated);
        }
        let port_no = buf.get_u16();
        let mut hw_addr = [0u8; 6];
        buf.copy_to_slice(&mut hw_addr);
        let mut name = [0u8; 16];
        buf.copy_to_slice(&mut name);
        buf.advance(24);
        let end = name.iter().position(|&b| b == 0).unwrap_or(16);
        let name = String::from_utf8_lossy(&name[..end]).into_owned();
        Ok(PhyPort {
            port_no,
            hw_addr,
            name,
        })
    }
}

/// One flow's statistics in a flow-stats reply (subset of ofp_flow_stats).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FlowStatsEntry {
    /// Table the flow lives in.
    pub table_id: u8,
    /// The flow's match.
    pub match_: Match,
    /// Seconds the flow has been installed.
    pub duration_sec: u32,
    /// Flow priority.
    pub priority: u16,
    /// Opaque controller cookie.
    pub cookie: u64,
    /// Packets matched.
    pub packet_count: u64,
    /// Bytes matched.
    pub byte_count: u64,
    /// The flow's actions.
    pub actions: Vec<Action>,
}

const FLOW_STATS_FIXED: usize = 88; // per spec: length..actions offset

/// The OpenFlow messages this codec understands.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum OfMessage {
    /// Version negotiation.
    Hello {
        /// Transaction id.
        xid: u32,
    },
    /// Liveness probe.
    EchoRequest {
        /// Transaction id.
        xid: u32,
        /// Opaque payload, echoed back.
        data: Vec<u8>,
    },
    /// Liveness response.
    EchoReply {
        /// Transaction id.
        xid: u32,
        /// Echoed payload.
        data: Vec<u8>,
    },
    /// Asks the switch to describe itself.
    FeaturesRequest {
        /// Transaction id.
        xid: u32,
    },
    /// The switch's self-description.
    FeaturesReply {
        /// Transaction id.
        xid: u32,
        /// Datapath id.
        datapath_id: u64,
        /// Packet buffer count.
        n_buffers: u32,
        /// Number of flow tables.
        n_tables: u8,
        /// Capability bits.
        capabilities: u32,
        /// Physical ports.
        ports: Vec<PhyPort>,
    },
    /// A packet punted to the controller.
    PacketIn {
        /// Transaction id.
        xid: u32,
        /// Buffer id on the switch (0xFFFFFFFF = unbuffered).
        buffer_id: u32,
        /// Full length of the original frame.
        total_len: u16,
        /// Ingress port.
        in_port: u16,
        /// Why it was punted.
        reason: PacketInReason,
        /// (Truncated) packet bytes.
        data: Vec<u8>,
    },
    /// A packet injected by the controller.
    PacketOut {
        /// Transaction id.
        xid: u32,
        /// Buffer to release (0xFFFFFFFF = use `data`).
        buffer_id: u32,
        /// Nominal ingress port.
        in_port: u16,
        /// Actions to apply.
        actions: Vec<Action>,
        /// Raw packet when unbuffered.
        data: Vec<u8>,
    },
    /// Flow table modification.
    FlowMod {
        /// Transaction id.
        xid: u32,
        /// Which flows to touch.
        match_: Match,
        /// Controller cookie.
        cookie: u64,
        /// Add/modify/delete.
        command: FlowModCommand,
        /// Idle timeout (s).
        idle_timeout: u16,
        /// Hard timeout (s).
        hard_timeout: u16,
        /// Priority.
        priority: u16,
        /// New actions.
        actions: Vec<Action>,
    },
    /// Flow statistics request (OFPST_FLOW).
    FlowStatsRequest {
        /// Transaction id.
        xid: u32,
        /// Flows to report.
        match_: Match,
        /// Table filter (0xFF = all).
        table_id: u8,
    },
    /// Flow statistics reply.
    FlowStatsReply {
        /// Transaction id.
        xid: u32,
        /// One entry per flow.
        flows: Vec<FlowStatsEntry>,
    },
    /// Port up/down notification.
    PortStatus {
        /// Transaction id.
        xid: u32,
        /// 0 = add, 1 = delete, 2 = modify.
        reason: u8,
        /// The port.
        desc: PhyPort,
    },
    /// An error report.
    Error {
        /// Transaction id.
        xid: u32,
        /// Error type.
        err_type: u16,
        /// Error code.
        code: u16,
        /// Offending data.
        data: Vec<u8>,
    },
}

impl OfMessage {
    /// The message's transaction id.
    pub fn xid(&self) -> u32 {
        match self {
            OfMessage::Hello { xid }
            | OfMessage::EchoRequest { xid, .. }
            | OfMessage::EchoReply { xid, .. }
            | OfMessage::FeaturesRequest { xid }
            | OfMessage::FeaturesReply { xid, .. }
            | OfMessage::PacketIn { xid, .. }
            | OfMessage::PacketOut { xid, .. }
            | OfMessage::FlowMod { xid, .. }
            | OfMessage::FlowStatsRequest { xid, .. }
            | OfMessage::FlowStatsReply { xid, .. }
            | OfMessage::PortStatus { xid, .. }
            | OfMessage::Error { xid, .. } => *xid,
        }
    }

    /// Encodes into OpenFlow 1.0 wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(64);
        // Header placeholder; length patched at the end.
        let (ty, xid) = match self {
            OfMessage::Hello { xid } => (OFPT_HELLO, *xid),
            OfMessage::EchoRequest { xid, .. } => (OFPT_ECHO_REQUEST, *xid),
            OfMessage::EchoReply { xid, .. } => (OFPT_ECHO_REPLY, *xid),
            OfMessage::FeaturesRequest { xid } => (OFPT_FEATURES_REQUEST, *xid),
            OfMessage::FeaturesReply { xid, .. } => (OFPT_FEATURES_REPLY, *xid),
            OfMessage::PacketIn { xid, .. } => (OFPT_PACKET_IN, *xid),
            OfMessage::PacketOut { xid, .. } => (OFPT_PACKET_OUT, *xid),
            OfMessage::FlowMod { xid, .. } => (OFPT_FLOW_MOD, *xid),
            OfMessage::FlowStatsRequest { xid, .. } => (OFPT_STATS_REQUEST, *xid),
            OfMessage::FlowStatsReply { xid, .. } => (OFPT_STATS_REPLY, *xid),
            OfMessage::PortStatus { xid, .. } => (OFPT_PORT_STATUS, *xid),
            OfMessage::Error { xid, .. } => (OFPT_ERROR, *xid),
        };
        buf.put_u8(OFP_VERSION);
        buf.put_u8(ty);
        buf.put_u16(0); // length patched below
        buf.put_u32(xid);

        match self {
            OfMessage::Hello { .. } | OfMessage::FeaturesRequest { .. } => {}
            OfMessage::EchoRequest { data, .. } | OfMessage::EchoReply { data, .. } => {
                buf.put_slice(data);
            }
            OfMessage::FeaturesReply {
                datapath_id,
                n_buffers,
                n_tables,
                capabilities,
                ports,
                ..
            } => {
                buf.put_u64(*datapath_id);
                buf.put_u32(*n_buffers);
                buf.put_u8(*n_tables);
                buf.put_slice(&[0u8; 3]);
                buf.put_u32(*capabilities);
                buf.put_u32(0); // actions bitmap
                for p in ports {
                    p.encode(&mut buf);
                }
            }
            OfMessage::PacketIn {
                buffer_id,
                total_len,
                in_port,
                reason,
                data,
                ..
            } => {
                buf.put_u32(*buffer_id);
                buf.put_u16(*total_len);
                buf.put_u16(*in_port);
                buf.put_u8(match reason {
                    PacketInReason::NoMatch => 0,
                    PacketInReason::Action => 1,
                });
                buf.put_u8(0);
                buf.put_slice(data);
            }
            OfMessage::PacketOut {
                buffer_id,
                in_port,
                actions,
                data,
                ..
            } => {
                buf.put_u32(*buffer_id);
                buf.put_u16(*in_port);
                buf.put_u16(Action::encoded_list_len(actions) as u16);
                for a in actions {
                    a.encode(&mut buf);
                }
                buf.put_slice(data);
            }
            OfMessage::FlowMod {
                match_,
                cookie,
                command,
                idle_timeout,
                hard_timeout,
                priority,
                actions,
                ..
            } => {
                match_.encode(&mut buf);
                buf.put_u64(*cookie);
                buf.put_u16(command.to_u16());
                buf.put_u16(*idle_timeout);
                buf.put_u16(*hard_timeout);
                buf.put_u16(*priority);
                buf.put_u32(u32::MAX); // buffer_id: none
                buf.put_u16(0xFFFF); // out_port: any
                buf.put_u16(0); // flags
                for a in actions {
                    a.encode(&mut buf);
                }
            }
            OfMessage::FlowStatsRequest {
                match_, table_id, ..
            } => {
                buf.put_u16(OFPST_FLOW);
                buf.put_u16(0); // flags
                match_.encode(&mut buf);
                buf.put_u8(*table_id);
                buf.put_u8(0);
                buf.put_u16(0xFFFF); // out_port
            }
            OfMessage::FlowStatsReply { flows, .. } => {
                buf.put_u16(OFPST_FLOW);
                buf.put_u16(0); // flags
                for f in flows {
                    let len = FLOW_STATS_FIXED + Action::encoded_list_len(&f.actions);
                    buf.put_u16(len as u16);
                    buf.put_u8(f.table_id);
                    buf.put_u8(0);
                    f.match_.encode(&mut buf);
                    buf.put_u32(f.duration_sec);
                    buf.put_u32(0); // duration_nsec
                    buf.put_u16(f.priority);
                    buf.put_u16(0); // idle_timeout
                    buf.put_u16(0); // hard_timeout
                    buf.put_slice(&[0u8; 6]);
                    buf.put_u64(f.cookie);
                    buf.put_u64(f.packet_count);
                    buf.put_u64(f.byte_count);
                    for a in &f.actions {
                        a.encode(&mut buf);
                    }
                }
            }
            OfMessage::PortStatus { reason, desc, .. } => {
                buf.put_u8(*reason);
                buf.put_slice(&[0u8; 7]);
                desc.encode(&mut buf);
            }
            OfMessage::Error {
                err_type,
                code,
                data,
                ..
            } => {
                buf.put_u16(*err_type);
                buf.put_u16(*code);
                buf.put_slice(data);
            }
        }

        let len = buf.len() as u16;
        buf[2..4].copy_from_slice(&len.to_be_bytes());
        buf.to_vec()
    }

    /// Decodes one OpenFlow 1.0 message. The slice must contain exactly one
    /// message (as framed by the header's length field).
    pub fn decode(bytes: &[u8]) -> Result<OfMessage, WireError> {
        let mut buf = bytes;
        if buf.remaining() < 8 {
            return Err(WireError::Truncated);
        }
        let version = buf.get_u8();
        if version != OFP_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let ty = buf.get_u8();
        let length = buf.get_u16() as usize;
        let xid = buf.get_u32();
        if length != bytes.len() {
            return Err(WireError::BadLength);
        }

        match ty {
            OFPT_HELLO => Ok(OfMessage::Hello { xid }),
            OFPT_ECHO_REQUEST => Ok(OfMessage::EchoRequest {
                xid,
                data: buf.to_vec(),
            }),
            OFPT_ECHO_REPLY => Ok(OfMessage::EchoReply {
                xid,
                data: buf.to_vec(),
            }),
            OFPT_FEATURES_REQUEST => Ok(OfMessage::FeaturesRequest { xid }),
            OFPT_FEATURES_REPLY => {
                if buf.remaining() < 24 {
                    return Err(WireError::Truncated);
                }
                let datapath_id = buf.get_u64();
                let n_buffers = buf.get_u32();
                let n_tables = buf.get_u8();
                buf.advance(3);
                let capabilities = buf.get_u32();
                buf.advance(4);
                let mut ports = Vec::new();
                while buf.remaining() >= 48 {
                    ports.push(PhyPort::decode(&mut buf)?);
                }
                Ok(OfMessage::FeaturesReply {
                    xid,
                    datapath_id,
                    n_buffers,
                    n_tables,
                    capabilities,
                    ports,
                })
            }
            OFPT_PACKET_IN => {
                if buf.remaining() < 10 {
                    return Err(WireError::Truncated);
                }
                let buffer_id = buf.get_u32();
                let total_len = buf.get_u16();
                let in_port = buf.get_u16();
                let reason = match buf.get_u8() {
                    0 => PacketInReason::NoMatch,
                    _ => PacketInReason::Action,
                };
                buf.advance(1);
                Ok(OfMessage::PacketIn {
                    xid,
                    buffer_id,
                    total_len,
                    in_port,
                    reason,
                    data: buf.to_vec(),
                })
            }
            OFPT_PACKET_OUT => {
                if buf.remaining() < 8 {
                    return Err(WireError::Truncated);
                }
                let buffer_id = buf.get_u32();
                let in_port = buf.get_u16();
                let actions_len = buf.get_u16() as usize;
                if buf.remaining() < actions_len {
                    return Err(WireError::Truncated);
                }
                let actions = Action::decode_list(&buf[..actions_len])?;
                buf.advance(actions_len);
                Ok(OfMessage::PacketOut {
                    xid,
                    buffer_id,
                    in_port,
                    actions,
                    data: buf.to_vec(),
                })
            }
            OFPT_FLOW_MOD => {
                let match_ = Match::decode(&mut buf)?;
                if buf.remaining() < 24 {
                    return Err(WireError::Truncated);
                }
                let cookie = buf.get_u64();
                let command = FlowModCommand::from_u16(buf.get_u16())?;
                let idle_timeout = buf.get_u16();
                let hard_timeout = buf.get_u16();
                let priority = buf.get_u16();
                buf.advance(8); // buffer_id + out_port + flags
                let actions = Action::decode_list(buf)?;
                Ok(OfMessage::FlowMod {
                    xid,
                    match_,
                    cookie,
                    command,
                    idle_timeout,
                    hard_timeout,
                    priority,
                    actions,
                })
            }
            OFPT_STATS_REQUEST => {
                if buf.remaining() < 4 {
                    return Err(WireError::Truncated);
                }
                let stats_type = buf.get_u16();
                buf.advance(2);
                if stats_type != OFPST_FLOW {
                    return Err(WireError::Unsupported("stats type"));
                }
                let match_ = Match::decode(&mut buf)?;
                if buf.remaining() < 4 {
                    return Err(WireError::Truncated);
                }
                let table_id = buf.get_u8();
                buf.advance(3);
                Ok(OfMessage::FlowStatsRequest {
                    xid,
                    match_,
                    table_id,
                })
            }
            OFPT_STATS_REPLY => {
                if buf.remaining() < 4 {
                    return Err(WireError::Truncated);
                }
                let stats_type = buf.get_u16();
                buf.advance(2);
                if stats_type != OFPST_FLOW {
                    return Err(WireError::Unsupported("stats type"));
                }
                let mut flows = Vec::new();
                while buf.remaining() >= FLOW_STATS_FIXED {
                    let entry_len = buf.get_u16() as usize;
                    if entry_len < FLOW_STATS_FIXED || buf.remaining() < entry_len - 2 {
                        return Err(WireError::BadLength);
                    }
                    let table_id = buf.get_u8();
                    buf.advance(1);
                    let match_ = Match::decode(&mut buf)?;
                    let duration_sec = buf.get_u32();
                    buf.advance(4); // nsec
                    let priority = buf.get_u16();
                    buf.advance(4); // idle + hard
                    buf.advance(6); // pad
                    let cookie = buf.get_u64();
                    let packet_count = buf.get_u64();
                    let byte_count = buf.get_u64();
                    let actions_len = entry_len - FLOW_STATS_FIXED;
                    if buf.remaining() < actions_len {
                        return Err(WireError::Truncated);
                    }
                    let actions = Action::decode_list(&buf[..actions_len])?;
                    buf.advance(actions_len);
                    flows.push(FlowStatsEntry {
                        table_id,
                        match_,
                        duration_sec,
                        priority,
                        cookie,
                        packet_count,
                        byte_count,
                        actions,
                    });
                }
                Ok(OfMessage::FlowStatsReply { xid, flows })
            }
            OFPT_PORT_STATUS => {
                if buf.remaining() < 8 {
                    return Err(WireError::Truncated);
                }
                let reason = buf.get_u8();
                buf.advance(7);
                let desc = PhyPort::decode(&mut buf)?;
                Ok(OfMessage::PortStatus { xid, reason, desc })
            }
            OFPT_ERROR => {
                if buf.remaining() < 4 {
                    return Err(WireError::Truncated);
                }
                let err_type = buf.get_u16();
                let code = buf.get_u16();
                Ok(OfMessage::Error {
                    xid,
                    err_type,
                    code,
                    data: buf.to_vec(),
                })
            }
            other => Err(WireError::BadType(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: OfMessage) {
        let bytes = msg.encode();
        assert_eq!(&bytes[0..1], &[OFP_VERSION]);
        let got_len = u16::from_be_bytes([bytes[2], bytes[3]]) as usize;
        assert_eq!(got_len, bytes.len(), "length field must match");
        let back = OfMessage::decode(&bytes).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn hello_and_echo_roundtrip() {
        roundtrip(OfMessage::Hello { xid: 1 });
        roundtrip(OfMessage::EchoRequest {
            xid: 2,
            data: vec![1, 2, 3],
        });
        roundtrip(OfMessage::EchoReply {
            xid: 3,
            data: vec![],
        });
    }

    #[test]
    fn features_roundtrip() {
        roundtrip(OfMessage::FeaturesRequest { xid: 4 });
        roundtrip(OfMessage::FeaturesReply {
            xid: 5,
            datapath_id: 0xAABB,
            n_buffers: 256,
            n_tables: 2,
            capabilities: 0x1,
            ports: vec![
                PhyPort {
                    port_no: 1,
                    hw_addr: [1, 2, 3, 4, 5, 6],
                    name: "eth1".into(),
                },
                PhyPort {
                    port_no: 2,
                    hw_addr: [6, 5, 4, 3, 2, 1],
                    name: "eth2".into(),
                },
            ],
        });
    }

    #[test]
    fn packet_in_out_roundtrip() {
        roundtrip(OfMessage::PacketIn {
            xid: 6,
            buffer_id: u32::MAX,
            total_len: 64,
            in_port: 3,
            reason: PacketInReason::NoMatch,
            data: vec![0xDE, 0xAD],
        });
        roundtrip(OfMessage::PacketOut {
            xid: 7,
            buffer_id: u32::MAX,
            in_port: 0xFFF8,
            actions: vec![Action::Output {
                port: OFPP_FLOOD,
                max_len: 0,
            }],
            data: vec![0xBE, 0xEF],
        });
    }

    #[test]
    fn flow_mod_roundtrip() {
        roundtrip(OfMessage::FlowMod {
            xid: 8,
            match_: Match::dl_dst_exact([1, 2, 3, 4, 5, 6]),
            cookie: 42,
            command: FlowModCommand::Add,
            idle_timeout: 60,
            hard_timeout: 0,
            priority: 100,
            actions: vec![Action::Output {
                port: 2,
                max_len: 0,
            }],
        });
    }

    #[test]
    fn flow_stats_roundtrip() {
        roundtrip(OfMessage::FlowStatsRequest {
            xid: 9,
            match_: Match::any(),
            table_id: 0xFF,
        });
        roundtrip(OfMessage::FlowStatsReply {
            xid: 10,
            flows: vec![
                FlowStatsEntry {
                    table_id: 0,
                    match_: Match::nw_pair(0x0A000001, 0x0A000002),
                    duration_sec: 12,
                    priority: 10,
                    cookie: 7,
                    packet_count: 1000,
                    byte_count: 64_000,
                    actions: vec![Action::Output {
                        port: 1,
                        max_len: 0,
                    }],
                },
                FlowStatsEntry {
                    table_id: 0,
                    match_: Match::any(),
                    duration_sec: 99,
                    priority: 0,
                    cookie: 0,
                    packet_count: 5,
                    byte_count: 300,
                    actions: vec![],
                },
            ],
        });
    }

    #[test]
    fn port_status_and_error_roundtrip() {
        roundtrip(OfMessage::PortStatus {
            xid: 11,
            reason: 1,
            desc: PhyPort {
                port_no: 7,
                hw_addr: [0; 6],
                name: "down0".into(),
            },
        });
        roundtrip(OfMessage::Error {
            xid: 12,
            err_type: 1,
            code: 2,
            data: vec![9, 9],
        });
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = OfMessage::Hello { xid: 1 }.encode();
        bytes[0] = 0x04;
        assert_eq!(OfMessage::decode(&bytes), Err(WireError::BadVersion(0x04)));
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut bytes = OfMessage::Hello { xid: 1 }.encode();
        bytes[3] += 1;
        assert_eq!(OfMessage::decode(&bytes), Err(WireError::BadLength));
    }

    #[test]
    fn truncated_rejected() {
        let bytes = OfMessage::FeaturesReply {
            xid: 1,
            datapath_id: 1,
            n_buffers: 0,
            n_tables: 1,
            capabilities: 0,
            ports: vec![],
        }
        .encode();
        assert!(OfMessage::decode(&bytes[..10]).is_err());
    }

    #[test]
    fn match_covers_semantics() {
        let any = Match::any();
        let pkt = Match {
            wildcards: 0,
            in_port: 1,
            dl_dst: [1, 2, 3, 4, 5, 6],
            nw_src: 0x0A000001,
            nw_dst: 0x0A000002,
            ..Default::default()
        };
        assert!(any.covers(&pkt));
        assert!(Match::dl_dst_exact([1, 2, 3, 4, 5, 6]).covers(&pkt));
        assert!(!Match::dl_dst_exact([9, 9, 9, 9, 9, 9]).covers(&pkt));
        assert!(Match::nw_pair(0x0A000001, 0x0A000002).covers(&pkt));
        assert!(!Match::nw_pair(0x0A000001, 0x0A000003).covers(&pkt));
    }

    #[test]
    fn unknown_actions_are_skipped() {
        // A 8-byte action of unknown type 0x7 followed by a valid output.
        let mut raw = Vec::new();
        raw.extend_from_slice(&0x0007u16.to_be_bytes());
        raw.extend_from_slice(&8u16.to_be_bytes());
        raw.extend_from_slice(&[0; 4]);
        raw.extend_from_slice(&OFPAT_OUTPUT.to_be_bytes());
        raw.extend_from_slice(&8u16.to_be_bytes());
        raw.extend_from_slice(&3u16.to_be_bytes());
        raw.extend_from_slice(&0u16.to_be_bytes());
        let actions = Action::decode_list(&raw).unwrap();
        assert_eq!(
            actions,
            vec![Action::Output {
                port: 3,
                max_len: 0
            }]
        );
    }
}
