//! Property tests for the OpenFlow 1.0 codec: arbitrary messages round-trip,
//! arbitrary bytes never panic the decoder, and the switch model preserves
//! its invariants under arbitrary FLOW_MOD streams.

use beehive_openflow::wire::OFPFW_ALL;
use beehive_openflow::{
    Action, FlowModCommand, FlowStatsEntry, Match, OfMessage, PacketInReason, PhyPort, SwitchModel,
};
use proptest::prelude::*;

fn arb_match() -> impl Strategy<Value = Match> {
    (
        0u32..=OFPFW_ALL,
        any::<u16>(),
        any::<[u8; 6]>(),
        any::<[u8; 6]>(),
        any::<u16>(),
        any::<u32>(),
        any::<u32>(),
        (any::<u16>(), any::<u16>(), any::<u8>(), any::<u8>()),
    )
        .prop_map(
            |(wildcards, in_port, dl_src, dl_dst, dl_vlan, nw_src, nw_dst, rest)| Match {
                wildcards,
                in_port,
                dl_src,
                dl_dst,
                dl_vlan,
                dl_vlan_pcp: rest.2 & 0x7,
                dl_type: rest.0,
                nw_tos: rest.3,
                nw_proto: rest.2,
                nw_src,
                nw_dst,
                tp_src: rest.0,
                tp_dst: rest.1,
            },
        )
}

fn arb_actions() -> impl Strategy<Value = Vec<Action>> {
    proptest::collection::vec(
        (any::<u16>(), any::<u16>()).prop_map(|(port, max_len)| Action::Output { port, max_len }),
        0..4,
    )
}

fn arb_message() -> impl Strategy<Value = OfMessage> {
    prop_oneof![
        any::<u32>().prop_map(|xid| OfMessage::Hello { xid }),
        (any::<u32>(), proptest::collection::vec(any::<u8>(), 0..32))
            .prop_map(|(xid, data)| OfMessage::EchoRequest { xid, data }),
        any::<u32>().prop_map(|xid| OfMessage::FeaturesRequest { xid }),
        (
            any::<u32>(),
            any::<u64>(),
            proptest::collection::vec(any::<u16>(), 0..4)
        )
            .prop_map(|(xid, dpid, ports)| OfMessage::FeaturesReply {
                xid,
                datapath_id: dpid,
                n_buffers: 256,
                n_tables: 1,
                capabilities: 1,
                ports: ports
                    .into_iter()
                    .enumerate()
                    .map(|(i, _)| PhyPort {
                        port_no: i as u16 + 1,
                        hw_addr: [i as u8; 6],
                        name: format!("p{i}"),
                    })
                    .collect(),
            }),
        (
            any::<u32>(),
            any::<u16>(),
            proptest::collection::vec(any::<u8>(), 0..64)
        )
            .prop_map(|(xid, in_port, data)| OfMessage::PacketIn {
                xid,
                buffer_id: u32::MAX,
                total_len: data.len() as u16,
                in_port,
                reason: PacketInReason::NoMatch,
                data,
            }),
        (any::<u32>(), arb_match(), arb_actions(), any::<u16>()).prop_map(
            |(xid, match_, actions, priority)| OfMessage::FlowMod {
                xid,
                match_,
                cookie: 7,
                command: FlowModCommand::Add,
                idle_timeout: 0,
                hard_timeout: 0,
                priority,
                actions,
            }
        ),
        (any::<u32>(), arb_match()).prop_map(|(xid, match_)| OfMessage::FlowStatsRequest {
            xid,
            match_,
            table_id: 0xFF
        }),
        (
            any::<u32>(),
            proptest::collection::vec(
                (arb_match(), arb_actions(), any::<u64>(), any::<u64>()),
                0..4
            )
        )
            .prop_map(|(xid, entries)| OfMessage::FlowStatsReply {
                xid,
                flows: entries
                    .into_iter()
                    .map(|(match_, actions, packets, bytes)| FlowStatsEntry {
                        table_id: 0,
                        match_,
                        duration_sec: 1,
                        priority: 1,
                        cookie: 0,
                        packet_count: packets,
                        byte_count: bytes,
                        actions,
                    })
                    .collect(),
            }),
    ]
}

proptest! {
    #[test]
    fn messages_roundtrip(msg in arb_message()) {
        let bytes = msg.encode();
        let back = OfMessage::decode(&bytes).expect("decode what we encoded");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = OfMessage::decode(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_plausible_headers(
        ty in 0u8..24,
        xid in any::<u32>(),
        body in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        // A well-formed header with arbitrary body — the adversarial case.
        let mut bytes = Vec::with_capacity(8 + body.len());
        bytes.push(0x01);
        bytes.push(ty);
        bytes.extend_from_slice(&((8 + body.len()) as u16).to_be_bytes());
        bytes.extend_from_slice(&xid.to_be_bytes());
        bytes.extend_from_slice(&body);
        let _ = OfMessage::decode(&bytes);
    }

    #[test]
    fn wildcard_match_covers_is_reflexive_for_exact(m in arb_match()) {
        let mut exact = m;
        exact.wildcards = 0;
        prop_assert!(Match::any().covers(&exact), "ANY must cover everything");
        prop_assert!(exact.covers(&exact), "exact match covers itself");
    }

    #[test]
    fn switch_invariants_under_flow_mod_stream(
        mods in proptest::collection::vec(
            (0u8..3, arb_match(), any::<u16>(), arb_actions()),
            1..32
        )
    ) {
        let mut sw = SwitchModel::new(1, 4);
        for (kind, match_, priority, actions) in mods {
            let command = match kind {
                0 => FlowModCommand::Add,
                1 => FlowModCommand::Modify,
                _ => FlowModCommand::Delete,
            };
            sw.handle(OfMessage::FlowMod {
                xid: 0,
                match_,
                cookie: 0,
                command,
                idle_timeout: 0,
                hard_timeout: 0,
                priority,
                actions,
            });
            // Invariant: the table stays sorted by descending priority.
            let prios: Vec<u16> = sw.flows().iter().map(|f| f.priority).collect();
            prop_assert!(
                prios.windows(2).all(|w| w[0] >= w[1]),
                "flow table must stay priority-sorted: {:?}",
                prios
            );
            // Invariant: no duplicate (match, priority) pairs.
            for (i, a) in sw.flows().iter().enumerate() {
                for b in sw.flows().iter().skip(i + 1) {
                    prop_assert!(
                        !(a.match_ == b.match_ && a.priority == b.priority),
                        "duplicate flow entries"
                    );
                }
            }
        }
    }

    #[test]
    fn stats_roundtrip_over_wire_after_mod_stream(
        matches in proptest::collection::vec(arb_match(), 1..8)
    ) {
        let mut sw = SwitchModel::new(9, 2);
        for (i, m) in matches.iter().enumerate() {
            sw.handle(OfMessage::FlowMod {
                xid: 0,
                match_: *m,
                cookie: i as u64,
                command: FlowModCommand::Add,
                idle_timeout: 0,
                hard_timeout: 0,
                priority: i as u16,
                actions: vec![Action::Output { port: 1, max_len: 0 }],
            });
        }
        let req = OfMessage::FlowStatsRequest { xid: 5, match_: Match::any(), table_id: 0xFF };
        let replies = sw.handle_bytes(&req.encode()).expect("well-formed request");
        prop_assert_eq!(replies.len(), 1);
        match OfMessage::decode(&replies[0]).expect("well-formed reply") {
            OfMessage::FlowStatsReply { flows, .. } => {
                prop_assert_eq!(flows.len(), sw.flows().len());
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }
}
