//! Tunables for a Raft node. All durations are expressed in *ticks*; the
//! embedder decides how long a tick is (the Beehive hive uses 10 ms,
//! the simulator uses one virtual tick).

/// Configuration for a [`crate::RaftNode`].
#[derive(Debug, Clone)]
pub struct Config {
    /// Minimum election timeout, in ticks. A follower that hears nothing from
    /// a leader for a random duration in
    /// `[election_timeout_min, election_timeout_max]` becomes a candidate.
    pub election_timeout_min: u64,
    /// Maximum election timeout, in ticks.
    pub election_timeout_max: u64,
    /// Leader heartbeat interval, in ticks. Must be well below the minimum
    /// election timeout.
    pub heartbeat_interval: u64,
    /// Maximum number of entries shipped in one `AppendEntries`.
    pub max_entries_per_append: usize,
    /// Take a snapshot and truncate the log once it holds more than this many
    /// applied entries. `0` disables automatic compaction.
    pub snapshot_threshold: u64,
    /// Seed for the node's deterministic RNG (election jitter). Nodes should
    /// use distinct seeds; the harness derives them from a master seed.
    pub rng_seed: u64,
    /// Run the pre-vote phase before real elections (Raft §9.6): a
    /// partitioned node that rejoins won't inflate terms and depose a
    /// healthy leader unless it could actually win.
    pub pre_vote: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            election_timeout_min: 10,
            election_timeout_max: 20,
            heartbeat_interval: 3,
            max_entries_per_append: 128,
            snapshot_threshold: 8192,
            rng_seed: 0xBEE5,
            pre_vote: true,
        }
    }
}

impl Config {
    /// Validates invariants (timeout ordering, nonzero heartbeat).
    pub fn validate(&self) -> Result<(), String> {
        if self.heartbeat_interval == 0 {
            return Err("heartbeat_interval must be > 0".into());
        }
        if self.election_timeout_min < 2 * self.heartbeat_interval {
            return Err("election_timeout_min must be at least 2x heartbeat_interval".into());
        }
        if self.election_timeout_max < self.election_timeout_min {
            return Err("election_timeout_max must be >= election_timeout_min".into());
        }
        if self.max_entries_per_append == 0 {
            return Err("max_entries_per_append must be > 0".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        Config::default().validate().unwrap();
    }

    #[test]
    fn rejects_inverted_timeouts() {
        let cfg = Config {
            election_timeout_max: 5,
            ..Config::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_tight_heartbeat() {
        let cfg = Config {
            heartbeat_interval: 8,
            election_timeout_min: 10,
            ..Config::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_zero_batch() {
        let cfg = Config {
            max_entries_per_append: 0,
            ..Config::default()
        };
        assert!(cfg.validate().is_err());
    }
}
