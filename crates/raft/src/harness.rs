//! A deterministic virtual-time cluster for testing and benchmarking Raft.
//!
//! The harness owns every node, carries messages through per-link queues, and
//! supports seeded fault injection: message drops, fixed delays, partitions,
//! and node crashes/restarts (restart replays the node's persisted state).

use std::collections::{BTreeMap, HashSet, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::Config;
use crate::node::{Outbound, ProposeError, RaftNode};
use crate::storage::SharedMemStorage;
use crate::types::{NodeId, RaftMessage};
use crate::StateMachine;

/// An in-flight message with its virtual delivery time.
#[derive(Debug, Clone)]
struct InFlight {
    deliver_at: u64,
    from: NodeId,
    to: NodeId,
    msg: RaftMessage,
}

/// Fault-injection knobs, adjustable between ticks.
#[derive(Debug, Clone)]
pub struct Faults {
    /// Probability in `[0, 1]` that any message is dropped.
    pub drop_rate: f64,
    /// Fixed delivery delay in ticks (on top of 1 tick minimum).
    pub delay: u64,
    /// Extra random delay in `[0, jitter]` ticks.
    pub jitter: u64,
}

impl Default for Faults {
    fn default() -> Self {
        Faults {
            drop_rate: 0.0,
            delay: 0,
            jitter: 0,
        }
    }
}

/// A whole Raft cluster in virtual time.
pub struct Cluster<SM: StateMachine> {
    nodes: BTreeMap<NodeId, RaftNode<SM>>,
    /// Every node's durable storage, retained across crashes.
    storages: BTreeMap<NodeId, SharedMemStorage>,
    /// Ids of currently crashed nodes.
    down: HashSet<NodeId>,
    queue: VecDeque<InFlight>,
    now: u64,
    rng: StdRng,
    cfg: Config,
    make_sm: Box<dyn Fn() -> SM>,
    /// Pairs (a, b) that cannot communicate (both directions).
    partitions: HashSet<(NodeId, NodeId)>,
    /// Faults applied to every link.
    pub faults: Faults,
    /// Total messages delivered (for bandwidth-ish assertions).
    pub delivered: u64,
    /// Total payload bytes delivered.
    pub delivered_bytes: u64,
}

impl<SM: StateMachine> Cluster<SM> {
    /// Builds a cluster of `n` nodes with ids `1..=n`.
    pub fn new(n: usize, cfg: Config, seed: u64, make_sm: impl Fn() -> SM + 'static) -> Self {
        let ids: Vec<NodeId> = (1..=n as u64).collect();
        let mut nodes = BTreeMap::new();
        let mut storages = BTreeMap::new();
        for &id in &ids {
            let peers: Vec<NodeId> = ids.iter().copied().filter(|&p| p != id).collect();
            let node_cfg = Config {
                rng_seed: seed ^ (id << 32),
                ..cfg.clone()
            };
            let storage = SharedMemStorage::new();
            storages.insert(id, storage.handle());
            nodes.insert(
                id,
                RaftNode::new(id, peers, node_cfg, make_sm(), Box::new(storage)),
            );
        }
        Cluster {
            nodes,
            storages,
            down: HashSet::new(),
            queue: VecDeque::new(),
            now: 0,
            rng: StdRng::seed_from_u64(seed),
            cfg,
            make_sm: Box::new(make_sm),
            partitions: HashSet::new(),
            faults: Faults::default(),
            delivered: 0,
            delivered_bytes: 0,
        }
    }

    /// Current virtual time in ticks.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Iterates over live nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &RaftNode<SM>> {
        self.nodes.values()
    }

    /// A live node by id.
    pub fn node(&self, id: NodeId) -> Option<&RaftNode<SM>> {
        self.nodes.get(&id)
    }

    /// Mutable access to a live node (e.g. to drain applied entries).
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut RaftNode<SM>> {
        self.nodes.get_mut(&id)
    }

    /// The current unique leader among live nodes, if exactly one exists at
    /// the maximum term.
    pub fn leader(&self) -> Option<NodeId> {
        let max_term = self.nodes.values().map(|n| n.term()).max()?;
        let leaders: Vec<NodeId> = self
            .nodes
            .values()
            .filter(|n| n.is_leader() && n.term() == max_term)
            .map(|n| n.id())
            .collect();
        if leaders.len() == 1 {
            Some(leaders[0])
        } else {
            None
        }
    }

    /// Proposes through node `id`.
    pub fn propose(&mut self, id: NodeId, data: Vec<u8>) -> Result<u64, ProposeError> {
        let node = self.nodes.get_mut(&id).expect("propose to live node");
        let (token, out) = node.propose_now(data)?;
        self.enqueue(id, out);
        Ok(token)
    }

    fn link_up(&self, a: NodeId, b: NodeId) -> bool {
        !self.partitions.contains(&(a.min(b), a.max(b)))
    }

    /// Severs the link between `a` and `b` (both directions).
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        self.partitions.insert((a.min(b), a.max(b)));
    }

    /// Isolates `id` from every other node.
    pub fn isolate(&mut self, id: NodeId) {
        let others: Vec<NodeId> = self.nodes.keys().copied().filter(|&p| p != id).collect();
        for o in others {
            self.partition(id, o);
        }
    }

    /// Heals all partitions.
    pub fn heal(&mut self) {
        self.partitions.clear();
    }

    /// Crashes a node: it stops processing, and its volatile state is lost.
    /// Its durable storage survives for [`Cluster::restart`].
    pub fn crash(&mut self, id: NodeId) {
        if self.nodes.remove(&id).is_some() {
            self.down.insert(id);
        }
        self.queue.retain(|m| m.to != id && m.from != id);
    }

    /// Restarts a crashed node from its durable storage.
    pub fn restart(&mut self, id: NodeId) {
        assert!(self.down.remove(&id), "restart a crashed node");
        let ids: Vec<NodeId> = self
            .nodes
            .keys()
            .copied()
            .chain(std::iter::once(id))
            .collect();
        let peers: Vec<NodeId> = ids.iter().copied().filter(|&p| p != id).collect();
        let node_cfg = Config {
            rng_seed: self.rng.gen(),
            ..self.cfg.clone()
        };
        let storage = self.storages.get(&id).expect("storage for node").handle();
        self.nodes.insert(
            id,
            RaftNode::new(id, peers, node_cfg, (self.make_sm)(), Box::new(storage)),
        );
    }

    fn enqueue(&mut self, from: NodeId, out: Vec<Outbound>) {
        for o in out {
            if !self.link_up(from, o.to) {
                continue;
            }
            if self.faults.drop_rate > 0.0 && self.rng.gen_bool(self.faults.drop_rate) {
                continue;
            }
            let jitter = if self.faults.jitter > 0 {
                self.rng.gen_range(0..=self.faults.jitter)
            } else {
                0
            };
            self.queue.push_back(InFlight {
                deliver_at: self.now + 1 + self.faults.delay + jitter,
                from,
                to: o.to,
                msg: o.msg,
            });
        }
    }

    /// Advances one tick: timers fire, then due messages deliver.
    pub fn tick(&mut self) {
        self.now += 1;
        // Timers.
        let ids: Vec<NodeId> = self.nodes.keys().copied().collect();
        for id in ids {
            let out = self
                .nodes
                .get_mut(&id)
                .map(|n| n.tick())
                .unwrap_or_default();
            self.enqueue(id, out);
        }
        // Deliveries. Process the queue snapshot so new sends wait a tick.
        let mut pending = std::mem::take(&mut self.queue);
        let mut later = VecDeque::new();
        while let Some(m) = pending.pop_front() {
            if m.deliver_at > self.now {
                later.push_back(m);
                continue;
            }
            if !self.link_up(m.from, m.to) {
                continue;
            }
            if let Some(node) = self.nodes.get_mut(&m.to) {
                self.delivered += 1;
                self.delivered_bytes += m.msg.encoded_len() as u64;
                let out = node.step(m.from, m.msg);
                // Enqueue replies (they'll be considered next tick).
                for o in out {
                    later.push_back(InFlight {
                        deliver_at: self.now + 1 + self.faults.delay,
                        from: m.to,
                        to: o.to,
                        msg: o.msg,
                    });
                }
            }
        }
        // Re-apply faults policy to replies uniformly is skipped for
        // simplicity; partitions are enforced at delivery time.
        self.queue = later;
    }

    /// Runs `n` ticks.
    pub fn run_ticks(&mut self, n: u64) {
        for _ in 0..n {
            self.tick();
        }
    }

    /// Ticks until a unique leader exists, up to `max_ticks`.
    pub fn run_until_leader(&mut self, max_ticks: u64) -> Result<NodeId, String> {
        for _ in 0..max_ticks {
            self.tick();
            if let Some(l) = self.leader() {
                return Ok(l);
            }
        }
        Err(format!("no leader after {max_ticks} ticks"))
    }

    /// Ticks until `pred` holds, up to `max_ticks`.
    pub fn run_until(&mut self, max_ticks: u64, mut pred: impl FnMut(&Self) -> bool) -> bool {
        for _ in 0..max_ticks {
            self.tick();
            if pred(self) {
                return true;
            }
        }
        false
    }

    /// Asserts the election-safety invariant: at most one leader per term
    /// among live nodes.
    pub fn assert_at_most_one_leader_per_term(&self) {
        let mut by_term: BTreeMap<u64, Vec<NodeId>> = BTreeMap::new();
        for n in self.nodes.values() {
            if n.is_leader() {
                by_term.entry(n.term()).or_default().push(n.id());
            }
        }
        for (term, leaders) in by_term {
            assert!(
                leaders.len() <= 1,
                "term {term} has multiple leaders: {leaders:?}"
            );
        }
    }

    /// Asserts log matching on committed prefixes: all pairs of live nodes
    /// agree on entries up to the minimum of their commit indices.
    pub fn assert_committed_logs_agree(&self) {
        let nodes: Vec<&RaftNode<SM>> = self.nodes.values().collect();
        for i in 0..nodes.len() {
            for j in (i + 1)..nodes.len() {
                let (a, b) = (nodes[i], nodes[j]);
                let upto = a.commit_index().min(b.commit_index());
                let from = a.log().first_index().max(b.log().first_index());
                for idx in from..=upto {
                    let (ea, eb) = (a.log().entry_at(idx), b.log().entry_at(idx));
                    if let (Some(ea), Some(eb)) = (ea, eb) {
                        assert_eq!(
                            (ea.term, &ea.data),
                            (eb.term, &eb.data),
                            "nodes {} and {} disagree at committed index {idx}",
                            a.id(),
                            b.id()
                        );
                    }
                }
            }
        }
    }
}
