#![warn(missing_docs)]

//! `beehive-raft` — a deterministic, sans-IO implementation of the Raft
//! consensus algorithm (Ongaro & Ousterhout, 2014).
//!
//! Beehive's HotNets'14 paper relies on "a distributed locking mechanism
//! (e.g., Chubby)" to keep the cell→bee registry consistent across hives.
//! This crate is our substitute: the registry is a replicated state machine
//! driven by Raft, which is also what the published Go implementation of
//! Beehive converged on (etcd Raft).
//!
//! # Design
//!
//! The core type, [`RaftNode`], performs **no IO and owns no threads or
//! clocks**. Time advances only when the embedder calls [`RaftNode::tick`],
//! and messages move only when the embedder passes them to
//! [`RaftNode::step`]. Both return [`Outbound`] messages for the embedder to
//! deliver. This makes the algorithm fully deterministic and testable — the
//! [`harness`] module runs whole clusters in virtual time with seeded fault
//! injection, and `beehive-sim` drives registry Raft groups the same way.
//!
//! Implemented: leader election with randomized timeouts, log replication
//! with conflict-index backoff, commitment (including the current-term
//! restriction, Raft §5.4.2), client proposal correlation, log-compaction
//! snapshots and `InstallSnapshot`, and pluggable [`Storage`] (in-memory and
//! file-backed via `beehive-wire`).
//!
//! # Example
//!
//! ```
//! use beehive_raft::{Config, RaftNode, KvCounter, harness::Cluster};
//!
//! // A three-node cluster that agrees on increments of a counter.
//! let mut cluster = Cluster::new(3, Config::default(), 42, KvCounter::default);
//! cluster.run_until_leader(1000).expect("a leader should emerge");
//! let leader = cluster.leader().unwrap();
//! cluster.propose(leader, vec![5]).unwrap();
//! cluster.run_ticks(100);
//! assert!(cluster.nodes().all(|n| n.state_machine().total == 5));
//! ```

mod config;
mod log;
mod node;
mod storage;
mod types;

pub mod harness;

pub use config::Config;
pub use log::RaftLog;
pub use node::{Applied, Outbound, ProposeError, RaftNode, Role};
pub use storage::{
    FileStorage, FsyncPolicy, HardState, MemStorage, PersistedState, SharedMemStorage,
    SnapshotRecord, Storage, StorageError,
};
pub use types::{
    ConfChange, ConfChangeKind, Entry, EntryKind, LogIndex, NodeId, RaftMessage, Term,
};

/// The replicated state machine interface.
///
/// `apply` must be **deterministic**: every replica applies the same entries
/// in the same order and must reach the same state.
pub trait StateMachine: Send + 'static {
    /// Result returned to the proposer when its entry commits.
    type Output: Clone + Send + 'static;

    /// Applies a committed log entry.
    fn apply(&mut self, index: LogIndex, data: &[u8]) -> Self::Output;

    /// Serializes the full state for log compaction.
    fn snapshot(&self) -> Vec<u8>;

    /// Replaces the state from a snapshot produced by [`StateMachine::snapshot`].
    fn restore(&mut self, snapshot: &[u8]);
}

/// A tiny state machine summing the bytes proposed to it — used by doc tests,
/// unit tests and benchmarks.
#[derive(Default, Debug, Clone)]
pub struct KvCounter {
    /// Sum of all applied bytes.
    pub total: u64,
    /// Number of applied entries.
    pub applied: u64,
}

impl StateMachine for KvCounter {
    type Output = u64;

    fn apply(&mut self, _index: LogIndex, data: &[u8]) -> u64 {
        self.total += data.iter().map(|&b| b as u64).sum::<u64>();
        self.applied += 1;
        self.total
    }

    fn snapshot(&self) -> Vec<u8> {
        beehive_wire::to_vec(&(self.total, self.applied)).expect("snapshot KvCounter")
    }

    fn restore(&mut self, snapshot: &[u8]) {
        let (total, applied) = beehive_wire::from_slice(snapshot).expect("restore KvCounter");
        self.total = total;
        self.applied = applied;
    }
}
