//! The in-memory replicated log with snapshot-based compaction.
//!
//! Indexing is 1-based. After compaction the log keeps `snapshot_index` /
//! `snapshot_term` as the virtual entry preceding its first real entry.

use crate::types::{Entry, LogIndex, Term};

/// The replicated log of a single node.
#[derive(Debug, Clone, Default)]
pub struct RaftLog {
    /// Entries after the snapshot point, ordered by index.
    entries: Vec<Entry>,
    /// Index covered by the latest snapshot (0 = none).
    snapshot_index: LogIndex,
    /// Term of the entry at `snapshot_index`.
    snapshot_term: Term,
}

impl RaftLog {
    /// An empty log with no snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Restores a log from persisted parts.
    pub fn from_parts(snapshot_index: LogIndex, snapshot_term: Term, entries: Vec<Entry>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[1].index == w[0].index + 1));
        debug_assert!(entries
            .first()
            .is_none_or(|e| e.index == snapshot_index + 1));
        RaftLog {
            entries,
            snapshot_index,
            snapshot_term,
        }
    }

    /// Index of the last entry (or of the snapshot if the log is empty).
    pub fn last_index(&self) -> LogIndex {
        self.entries.last().map_or(self.snapshot_index, |e| e.index)
    }

    /// Term of the last entry (or of the snapshot if the log is empty).
    pub fn last_term(&self) -> Term {
        self.entries.last().map_or(self.snapshot_term, |e| e.term)
    }

    /// Index the current snapshot covers (0 when no snapshot was taken).
    pub fn snapshot_index(&self) -> LogIndex {
        self.snapshot_index
    }

    /// Term at the snapshot point.
    pub fn snapshot_term(&self) -> Term {
        self.snapshot_term
    }

    /// First index still present as a real entry.
    pub fn first_index(&self) -> LogIndex {
        self.snapshot_index + 1
    }

    /// Number of real (non-compacted) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no real entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Term of the entry at `index`. Returns `None` when the index was
    /// compacted away (and isn't the snapshot point) or lies beyond the log.
    pub fn term_at(&self, index: LogIndex) -> Option<Term> {
        if index == 0 {
            return Some(0);
        }
        if index == self.snapshot_index {
            return Some(self.snapshot_term);
        }
        if index < self.first_index() || index > self.last_index() {
            return None;
        }
        Some(self.entries[(index - self.first_index()) as usize].term)
    }

    /// The entry at `index`, if present.
    pub fn entry_at(&self, index: LogIndex) -> Option<&Entry> {
        if index < self.first_index() || index > self.last_index() {
            return None;
        }
        Some(&self.entries[(index - self.first_index()) as usize])
    }

    /// Entries in `[from, to_inclusive]`, clamped to what exists, at most
    /// `max` of them.
    pub fn slice(&self, from: LogIndex, to_inclusive: LogIndex, max: usize) -> Vec<Entry> {
        let from = from.max(self.first_index());
        let to = to_inclusive.min(self.last_index());
        if from > to {
            return Vec::new();
        }
        let start = (from - self.first_index()) as usize;
        let end = (to - self.first_index() + 1) as usize;
        self.entries[start..end].iter().take(max).cloned().collect()
    }

    /// Appends a leader-created entry (index assigned automatically).
    pub fn append_new(
        &mut self,
        term: Term,
        data: Vec<u8>,
        kind: crate::types::EntryKind,
    ) -> LogIndex {
        let index = self.last_index() + 1;
        self.entries.push(Entry {
            term,
            index,
            data,
            kind,
        });
        index
    }

    /// Follower-side append: truncates on conflict, skips duplicates, appends
    /// the rest (Raft §5.3 receiver rules 3–4). Entries must be contiguous.
    /// Returns the new last index.
    pub fn append_entries(&mut self, incoming: &[Entry]) -> LogIndex {
        for entry in incoming {
            match self.term_at(entry.index) {
                Some(t) if t == entry.term => continue, // already have it
                Some(_) => {
                    // Conflict: drop this entry and everything after it.
                    if entry.index <= self.snapshot_index {
                        // Cannot truncate into the snapshot; entries there are
                        // committed and must agree. Skip defensively.
                        continue;
                    }
                    let keep = (entry.index - self.first_index()) as usize;
                    self.entries.truncate(keep);
                    self.entries.push(entry.clone());
                }
                None => {
                    if entry.index == self.last_index() + 1 {
                        self.entries.push(entry.clone());
                    }
                    // else: gap; caller's prev-check should prevent this.
                }
            }
        }
        self.last_index()
    }

    /// Whether a candidate's log is at least as up-to-date as ours (§5.4.1).
    pub fn candidate_up_to_date(&self, last_log_index: LogIndex, last_log_term: Term) -> bool {
        (last_log_term, last_log_index) >= (self.last_term(), self.last_index())
    }

    /// Discards entries up to and including `index`, recording the snapshot
    /// point. No-op if `index` is not beyond the current snapshot.
    pub fn compact(&mut self, index: LogIndex) {
        if index <= self.snapshot_index {
            return;
        }
        let term = self.term_at(index).expect("compact index must be in log");
        let first = self.first_index();
        let drop = ((index - first) + 1) as usize;
        self.entries.drain(..drop.min(self.entries.len()));
        self.snapshot_index = index;
        self.snapshot_term = term;
    }

    /// Resets the log to a snapshot received from the leader.
    pub fn reset_to_snapshot(&mut self, index: LogIndex, term: Term) {
        self.entries.clear();
        self.snapshot_index = index;
        self.snapshot_term = term;
    }

    /// For the leader's conflict-backoff optimization: the first index of the
    /// term containing `index`, used as `conflict_index` hints.
    pub fn first_index_of_term_at(&self, index: LogIndex) -> LogIndex {
        let Some(term) = self.term_at(index) else {
            return self.first_index();
        };
        let mut i = index;
        while i > self.first_index() && self.term_at(i - 1) == Some(term) {
            i -= 1;
        }
        i
    }

    /// All stored entries (for persistence).
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::EntryKind;

    fn entry(term: Term, index: LogIndex) -> Entry {
        Entry {
            term,
            index,
            data: vec![index as u8],
            kind: EntryKind::Normal,
        }
    }

    fn log_with(terms: &[Term]) -> RaftLog {
        let mut log = RaftLog::new();
        for (i, &t) in terms.iter().enumerate() {
            log.append_entries(&[entry(t, (i + 1) as LogIndex)]);
        }
        log
    }

    #[test]
    fn empty_log_defaults() {
        let log = RaftLog::new();
        assert_eq!(log.last_index(), 0);
        assert_eq!(log.last_term(), 0);
        assert_eq!(log.term_at(0), Some(0));
        assert_eq!(log.term_at(1), None);
        assert!(log.is_empty());
    }

    #[test]
    fn append_new_assigns_indices() {
        let mut log = RaftLog::new();
        assert_eq!(log.append_new(1, vec![], EntryKind::Noop), 1);
        assert_eq!(log.append_new(1, vec![1], EntryKind::Normal), 2);
        assert_eq!(log.last_index(), 2);
        assert_eq!(log.term_at(1), Some(1));
    }

    #[test]
    fn append_entries_truncates_on_conflict() {
        let mut log = log_with(&[1, 1, 2, 2]);
        // New leader in term 3 overwrites index 3 onward.
        log.append_entries(&[entry(3, 3)]);
        assert_eq!(log.last_index(), 3);
        assert_eq!(log.term_at(3), Some(3));
        assert_eq!(log.term_at(4), None);
    }

    #[test]
    fn append_entries_idempotent() {
        let mut log = log_with(&[1, 1]);
        log.append_entries(&[entry(1, 1), entry(1, 2)]);
        assert_eq!(log.last_index(), 2);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn slice_respects_bounds_and_max() {
        let log = log_with(&[1, 1, 1, 2, 2]);
        let s = log.slice(2, 4, 10);
        assert_eq!(s.iter().map(|e| e.index).collect::<Vec<_>>(), vec![2, 3, 4]);
        let s = log.slice(1, 5, 2);
        assert_eq!(s.len(), 2);
        assert!(log.slice(6, 9, 10).is_empty());
    }

    #[test]
    fn up_to_date_comparison() {
        let log = log_with(&[1, 2, 2]);
        assert!(log.candidate_up_to_date(3, 2)); // equal
        assert!(log.candidate_up_to_date(4, 2)); // longer same term
        assert!(log.candidate_up_to_date(1, 3)); // higher term wins
        assert!(!log.candidate_up_to_date(2, 2)); // shorter same term
        assert!(!log.candidate_up_to_date(9, 1)); // lower term loses
    }

    #[test]
    fn compact_then_query() {
        let mut log = log_with(&[1, 1, 2, 2, 3]);
        log.compact(3);
        assert_eq!(log.snapshot_index(), 3);
        assert_eq!(log.snapshot_term(), 2);
        assert_eq!(log.first_index(), 4);
        assert_eq!(log.term_at(3), Some(2)); // snapshot point still answers
        assert_eq!(log.term_at(2), None); // compacted away
        assert_eq!(log.last_index(), 5);
        // compaction is idempotent / monotonic
        log.compact(2);
        assert_eq!(log.snapshot_index(), 3);
    }

    #[test]
    fn reset_to_snapshot_clears_entries() {
        let mut log = log_with(&[1, 2, 3]);
        log.reset_to_snapshot(10, 4);
        assert_eq!(log.last_index(), 10);
        assert_eq!(log.last_term(), 4);
        assert!(log.is_empty());
        assert_eq!(log.first_index(), 11);
    }

    #[test]
    fn conflict_hint_finds_term_start() {
        let log = log_with(&[1, 1, 2, 2, 2, 3]);
        assert_eq!(log.first_index_of_term_at(5), 3);
        assert_eq!(log.first_index_of_term_at(2), 1);
        assert_eq!(log.first_index_of_term_at(6), 6);
    }

    #[test]
    fn append_after_compaction() {
        let mut log = log_with(&[1, 1, 1]);
        log.compact(3);
        log.append_entries(&[entry(2, 4)]);
        assert_eq!(log.last_index(), 4);
        assert_eq!(log.len(), 1);
    }
}
