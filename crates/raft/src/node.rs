//! The sans-IO Raft node: pure state transitions driven by `tick` and `step`.

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::Config;
use crate::log::RaftLog;
use crate::storage::{HardState, SnapshotRecord, Storage, StorageError};
use serde::{Deserialize, Serialize};

use crate::types::{
    ConfChange, ConfChangeKind, Entry, EntryKind, LogIndex, NodeId, RaftMessage, Term,
};
use crate::StateMachine;

/// What a snapshot actually carries on the wire and on disk: the membership
/// configuration at the snapshot point plus the serialized state machine.
/// Configuration must ride snapshots — a joiner that catches up via
/// `InstallSnapshot` would otherwise never learn who the members are.
#[derive(Serialize, Deserialize)]
struct SnapshotBlob {
    voters: Vec<NodeId>,
    learners: Vec<NodeId>,
    data: Vec<u8>,
}

/// A node's current role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Passive replica (Raft §5.2).
    Follower,
    /// Probing whether a real election could succeed (pre-vote, §9.6).
    PreCandidate,
    /// Soliciting votes after an election timeout.
    Candidate,
    /// The (unique per term) log authority.
    Leader,
}

/// A message the embedder must deliver to `to`.
#[derive(Debug, Clone)]
pub struct Outbound {
    /// Destination node.
    pub to: NodeId,
    /// The RPC payload.
    pub msg: RaftMessage,
}

/// A committed entry that has been applied to the local state machine.
#[derive(Debug, Clone)]
pub struct Applied<O> {
    /// Log index of the applied entry.
    pub index: LogIndex,
    /// Term of the applied entry.
    pub term: Term,
    /// Correlation token if this node proposed the entry (see
    /// [`RaftNode::propose`]).
    pub token: Option<u64>,
    /// The state machine's output for the entry.
    pub output: O,
}

/// Why a proposal was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProposeError {
    /// Only leaders accept proposals; the hint (if any) names the likely
    /// leader for the embedder to forward to.
    NotLeader(Option<NodeId>),
    /// A membership change is already in the log but not yet applied; only
    /// one may be in flight at a time (single-server change safety).
    ConfChangeInFlight,
}

impl std::fmt::Display for ProposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProposeError::NotLeader(hint) => write!(f, "not the leader (hint: {hint:?})"),
            ProposeError::ConfChangeInFlight => {
                write!(f, "a membership change is already in flight")
            }
        }
    }
}

impl std::error::Error for ProposeError {}

/// A Raft consensus participant bound to a replicated [`StateMachine`].
pub struct RaftNode<SM: StateMachine> {
    id: NodeId,
    /// Other voting members.
    peers: Vec<NodeId>,
    /// Non-voting members (learners): replicated to, never counted for
    /// quorum, never campaign. Beehive registers non-registry-voter hives as
    /// learners so every hive can serve cell lookups from a local mirror.
    learners: Vec<NodeId>,
    /// Whether this node itself is a learner.
    is_learner: bool,
    cfg: Config,
    rng: StdRng,

    role: Role,
    term: Term,
    voted_for: Option<NodeId>,
    leader_hint: Option<NodeId>,

    log: RaftLog,
    commit_index: LogIndex,
    last_applied: LogIndex,
    sm: SM,
    storage: Box<dyn Storage>,

    election_elapsed: u64,
    randomized_timeout: u64,
    heartbeat_elapsed: u64,

    votes: HashSet<NodeId>,
    pre_votes: HashSet<NodeId>,
    next_index: HashMap<NodeId, LogIndex>,
    match_index: HashMap<NodeId, LogIndex>,

    next_token: u64,
    pending: HashMap<LogIndex, (Term, u64)>,
    applied_buf: Vec<Applied<SM::Output>>,
    /// Set once a committed [`ConfChangeKind::RemoveNode`] named this node;
    /// a removed node stops campaigning and the embedder retires it.
    removed: bool,
    /// Committed membership changes not yet drained by the embedder
    /// ([`RaftNode::take_conf_changes`]).
    conf_changes: Vec<ConfChange>,
    /// First durable-storage failure. Once set the node is inert (fail-stop):
    /// its persisted state may trail its in-memory state, so voting,
    /// campaigning or acking appends could violate election/log safety. The
    /// embedder polls [`RaftNode::storage_fault`], records the event, and
    /// halts.
    fatal: Option<StorageError>,
    /// Snapshots this node has taken locally (compactions).
    snapshots_taken: u64,
    /// Snapshots this node has restored from a leader's `InstallSnapshot`.
    snapshots_installed: u64,
}

impl<SM: StateMachine> RaftNode<SM> {
    /// Creates a voting node. `peers` lists the *other* voting members.
    /// Persisted state in `storage` (if any) is restored.
    pub fn new(
        id: NodeId,
        peers: Vec<NodeId>,
        cfg: Config,
        sm: SM,
        storage: Box<dyn Storage>,
    ) -> Self {
        Self::with_membership(id, peers, Vec::new(), false, cfg, sm, storage)
    }

    /// Creates a non-voting learner that follows the `voters` group: it
    /// receives and applies the log but never votes or campaigns.
    pub fn new_learner(
        id: NodeId,
        voters: Vec<NodeId>,
        cfg: Config,
        sm: SM,
        storage: Box<dyn Storage>,
    ) -> Self {
        Self::with_membership(id, voters, Vec::new(), true, cfg, sm, storage)
    }

    /// Full-control constructor: `peers` are the other voters, `learners` the
    /// non-voting members this node (when leading) must replicate to.
    pub fn with_membership(
        id: NodeId,
        peers: Vec<NodeId>,
        learners: Vec<NodeId>,
        is_learner: bool,
        cfg: Config,
        sm: SM,
        storage: Box<dyn Storage>,
    ) -> Self {
        cfg.validate().expect("invalid raft config");
        debug_assert!(!peers.contains(&id), "peers must not include self");
        debug_assert!(!learners.contains(&id), "learners must not include self");
        let mut node = RaftNode {
            rng: StdRng::seed_from_u64(cfg.rng_seed ^ id.wrapping_mul(0x9E3779B97F4A7C15)),
            id,
            peers,
            learners,
            is_learner,
            cfg,
            role: Role::Follower,
            term: 0,
            voted_for: None,
            leader_hint: None,
            log: RaftLog::new(),
            commit_index: 0,
            last_applied: 0,
            sm,
            storage,
            election_elapsed: 0,
            randomized_timeout: 0,
            heartbeat_elapsed: 0,
            votes: HashSet::new(),
            pre_votes: HashSet::new(),
            next_index: HashMap::new(),
            match_index: HashMap::new(),
            next_token: 1,
            pending: HashMap::new(),
            applied_buf: Vec::new(),
            removed: false,
            conf_changes: Vec::new(),
            fatal: None,
            snapshots_taken: 0,
            snapshots_installed: 0,
        };
        match node.storage.load() {
            Ok(Some(persisted)) => {
                node.term = persisted.hard_state.term;
                node.voted_for = persisted.hard_state.voted_for;
                node.log = RaftLog::from_parts(
                    persisted.snapshot_index,
                    persisted.snapshot_term,
                    persisted.entries,
                );
                if let Some(snap) = persisted.snapshot {
                    node.restore_snapshot(&snap.data);
                    node.commit_index = snap.index;
                    node.last_applied = snap.index;
                }
            }
            Ok(None) => {}
            // Untrusted persisted state: the node must not participate with
            // a forgotten vote or truncated log. It comes up inert and the
            // embedder decides how loudly to die.
            Err(e) => node.fatal = Some(e),
        }
        node.reset_election_timer();
        node
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Whether this node currently believes it is the leader. A node with a
    /// latched storage fault never advertises leadership, even if it held
    /// (or just won) the role in memory: leadership it cannot persist is
    /// leadership it must not exercise.
    pub fn is_leader(&self) -> bool {
        self.fatal.is_none() && self.role == Role::Leader
    }

    /// The first durable-storage failure, if any. A faulted node is inert:
    /// `tick`/`step` emit nothing and proposals are refused, because acting
    /// on state that may not be persisted can elect two leaders in one term
    /// or un-ack replicated entries. Fail-stop is the only safe response.
    pub fn storage_fault(&self) -> Option<&StorageError> {
        self.fatal.as_ref()
    }

    /// The index the log has been compacted up to (0 before any snapshot).
    pub fn snapshot_index(&self) -> LogIndex {
        self.log.snapshot_index()
    }

    /// How many entries the local state machine has applied beyond the last
    /// local snapshot — the log replay a restart would need.
    pub fn snapshot_lag(&self) -> u64 {
        self.last_applied.saturating_sub(self.log.snapshot_index())
    }

    /// Snapshots taken locally (log compactions).
    pub fn snapshots_taken(&self) -> u64 {
        self.snapshots_taken
    }

    /// Snapshots restored from a leader via `InstallSnapshot`.
    pub fn snapshots_installed(&self) -> u64 {
        self.snapshots_installed
    }

    /// Whether this node is a non-voting learner.
    pub fn is_learner(&self) -> bool {
        self.is_learner
    }

    /// Current term.
    pub fn term(&self) -> Term {
        self.term
    }

    /// Highest committed index.
    pub fn commit_index(&self) -> LogIndex {
        self.commit_index
    }

    /// Highest applied index.
    pub fn last_applied(&self) -> LogIndex {
        self.last_applied
    }

    /// The node this one believes to be leader (itself when leading).
    pub fn leader_hint(&self) -> Option<NodeId> {
        if self.role == Role::Leader {
            Some(self.id)
        } else {
            self.leader_hint
        }
    }

    /// Read-only view of the local state machine. Reads through this view on
    /// a non-leader may be stale; Beehive routes linearizable operations
    /// through [`RaftNode::propose`].
    pub fn state_machine(&self) -> &SM {
        &self.sm
    }

    /// The local log (inspection/testing).
    pub fn log(&self) -> &RaftLog {
        &self.log
    }

    /// Cluster size including self.
    pub fn cluster_size(&self) -> usize {
        self.peers.len() + 1
    }

    fn majority(&self) -> usize {
        self.cluster_size() / 2 + 1
    }

    /// Drains entries applied since the last call.
    pub fn take_applied(&mut self) -> Vec<Applied<SM::Output>> {
        std::mem::take(&mut self.applied_buf)
    }

    /// Drains membership changes committed (and applied to this node's
    /// configuration) since the last call, in commit order. The embedder
    /// reacts by adding/removing transport peers, announcing the change, etc.
    pub fn take_conf_changes(&mut self) -> Vec<ConfChange> {
        std::mem::take(&mut self.conf_changes)
    }

    /// Whether a committed `RemoveNode` has named this node: it no longer
    /// belongs to the configuration and should be retired by the embedder.
    pub fn removed(&self) -> bool {
        self.removed
    }

    /// The current voting members, including this node when it votes.
    pub fn voters(&self) -> Vec<NodeId> {
        let mut v = self.peers.clone();
        if !self.is_learner && !self.removed {
            v.push(self.id);
        }
        v.sort_unstable();
        v
    }

    /// The current non-voting learners this configuration replicates to
    /// (excluding this node; check [`RaftNode::is_learner`] for self).
    pub fn learners(&self) -> &[NodeId] {
        &self.learners
    }

    /// Whether an appended membership change has not yet been applied.
    /// While one is in flight, [`RaftNode::propose_conf_change`] refuses
    /// further changes (single-server change safety: any two successive
    /// configurations share a quorum).
    pub fn conf_change_in_flight(&self) -> bool {
        let mut idx = self.log.last_index();
        while idx > self.last_applied && idx > self.log.snapshot_index() {
            if self
                .log
                .entry_at(idx)
                .is_some_and(|e| e.kind == EntryKind::ConfChange)
            {
                return true;
            }
            idx -= 1;
        }
        false
    }

    /// Proposes a single-node membership change. Leader-only; refuses while
    /// another change is in flight. The change is applied by every member
    /// when the entry commits and surfaces through
    /// [`RaftNode::take_conf_changes`].
    pub fn propose_conf_change(
        &mut self,
        cc: &ConfChange,
    ) -> Result<(u64, Vec<Outbound>), ProposeError> {
        if self.fatal.is_some() || self.role != Role::Leader {
            return Err(ProposeError::NotLeader(self.leader_hint()));
        }
        if self.conf_change_in_flight() {
            return Err(ProposeError::ConfChangeInFlight);
        }
        let index = self
            .log
            .append_new(self.term, cc.encode(), EntryKind::ConfChange);
        let token = self.next_token;
        self.next_token += 1;
        self.pending.insert(index, (self.term, token));
        self.persist_log();
        self.advance_commit();
        if self.fatal.is_some() {
            return Ok((token, Vec::new()));
        }
        Ok((token, self.broadcast_appends()))
    }

    /// Starts a leadership transfer to `to` (a voter): if the target's log
    /// is caught up it is told to campaign immediately via
    /// [`RaftMessage::TimeoutNow`]; otherwise the missing entries are shipped
    /// and the embedder retries once the target catches up. No-op on
    /// non-leaders. Used by a draining leader to hand off before demoting
    /// itself.
    pub fn transfer_leadership(&mut self, to: NodeId) -> Vec<Outbound> {
        if self.fatal.is_some() || self.role != Role::Leader || !self.peers.contains(&to) {
            return Vec::new();
        }
        if self.match_index.get(&to).copied().unwrap_or(0) >= self.log.last_index() {
            vec![Outbound {
                to,
                msg: RaftMessage::TimeoutNow { term: self.term },
            }]
        } else {
            vec![self.append_for(to)]
        }
    }

    /// Advances logical time by one tick, possibly starting an election or
    /// emitting heartbeats.
    pub fn tick(&mut self) -> Vec<Outbound> {
        if self.fatal.is_some() {
            return Vec::new();
        }
        let out = self.tick_inner();
        // A persist failure during the tick (e.g. the self-vote of a fresh
        // election) means the messages describe state that never reached
        // disk — suppress them and go inert.
        if self.fatal.is_some() {
            return Vec::new();
        }
        out
    }

    fn tick_inner(&mut self) -> Vec<Outbound> {
        match self.role {
            Role::Leader => {
                self.heartbeat_elapsed += 1;
                if self.heartbeat_elapsed >= self.cfg.heartbeat_interval {
                    self.heartbeat_elapsed = 0;
                    return self.broadcast_appends();
                }
                Vec::new()
            }
            Role::Follower | Role::Candidate | Role::PreCandidate => {
                if self.is_learner {
                    // Learners never campaign.
                    return Vec::new();
                }
                self.election_elapsed += 1;
                if self.election_elapsed >= self.randomized_timeout {
                    if self.cfg.pre_vote {
                        return self.start_pre_vote();
                    }
                    return self.start_election();
                }
                Vec::new()
            }
        }
    }

    /// Proposes a command. Returns a token that will come back in
    /// [`Applied::token`] when the entry commits and applies locally.
    pub fn propose(&mut self, data: Vec<u8>) -> Result<u64, ProposeError> {
        if self.fatal.is_some() || self.role != Role::Leader {
            return Err(ProposeError::NotLeader(self.leader_hint()));
        }
        let index = self.log.append_new(self.term, data, EntryKind::Normal);
        let token = self.next_token;
        self.next_token += 1;
        self.pending.insert(index, (self.term, token));
        self.persist_log();
        self.advance_commit();
        Ok(token)
    }

    /// Like [`RaftNode::propose`] but immediately returns the messages needed
    /// to replicate the entry, instead of waiting for the next heartbeat.
    pub fn propose_now(&mut self, data: Vec<u8>) -> Result<(u64, Vec<Outbound>), ProposeError> {
        let token = self.propose(data)?;
        if self.fatal.is_some() {
            return Ok((token, Vec::new()));
        }
        Ok((token, self.broadcast_appends()))
    }

    /// Processes an inbound RPC from `from`, returning replies / follow-ups.
    pub fn step(&mut self, from: NodeId, msg: RaftMessage) -> Vec<Outbound> {
        if self.fatal.is_some() {
            // Inert: answering RPCs from unpersisted state breaks safety.
            return Vec::new();
        }
        let out = self.step_inner(from, msg);
        // A persist failure mid-step means the replies (a granted vote, an
        // append ack) describe unpersisted state — suppress them.
        if self.fatal.is_some() {
            return Vec::new();
        }
        out
    }

    fn step_inner(&mut self, from: NodeId, msg: RaftMessage) -> Vec<Outbound> {
        let is_pre_vote = matches!(
            msg,
            RaftMessage::PreVote { .. } | RaftMessage::PreVoteResp { .. }
        );
        if !is_pre_vote && msg.term() > self.term {
            self.become_follower(msg.term(), None);
        }
        match msg {
            RaftMessage::RequestVote {
                term,
                last_log_index,
                last_log_term,
            } => self.on_request_vote(from, term, last_log_index, last_log_term),
            RaftMessage::RequestVoteResp { term, granted } => {
                self.on_request_vote_resp(from, term, granted)
            }
            RaftMessage::AppendEntries {
                term,
                prev_log_index,
                prev_log_term,
                entries,
                leader_commit,
            } => self.on_append_entries(
                from,
                term,
                prev_log_index,
                prev_log_term,
                entries,
                leader_commit,
            ),
            RaftMessage::AppendEntriesResp {
                term,
                success,
                match_index,
                conflict_index,
            } => self.on_append_entries_resp(from, term, success, match_index, conflict_index),
            RaftMessage::InstallSnapshot {
                term,
                last_index,
                last_term,
                data,
            } => self.on_install_snapshot(from, term, last_index, last_term, data),
            RaftMessage::InstallSnapshotResp { term, match_index } => {
                self.on_install_snapshot_resp(from, term, match_index)
            }
            RaftMessage::PreVote {
                term,
                last_log_index,
                last_log_term,
            } => self.on_pre_vote(from, term, last_log_index, last_log_term),
            RaftMessage::PreVoteResp { term, granted } => {
                self.on_pre_vote_resp(from, term, granted)
            }
            RaftMessage::TimeoutNow { term } => self.on_timeout_now(term),
        }
    }

    /// A transferring leader told us to campaign right now: start a real
    /// election immediately, skipping the election timeout and the pre-vote
    /// probe (the transfer is deliberate, so disturbing the old leader is
    /// the point).
    fn on_timeout_now(&mut self, term: Term) -> Vec<Outbound> {
        if term < self.term || self.is_learner || self.removed {
            return Vec::new();
        }
        self.start_election()
    }

    // ----- elections -----

    fn reset_election_timer(&mut self) {
        self.election_elapsed = 0;
        self.randomized_timeout = self
            .rng
            .gen_range(self.cfg.election_timeout_min..=self.cfg.election_timeout_max);
    }

    fn start_election(&mut self) -> Vec<Outbound> {
        self.role = Role::Candidate;
        self.term += 1;
        self.voted_for = Some(self.id);
        self.leader_hint = None;
        self.votes.clear();
        self.pre_votes.clear();
        self.votes.insert(self.id);
        self.persist_hard_state();
        self.reset_election_timer();
        if self.votes.len() >= self.majority() {
            // Single-node cluster: win immediately.
            return self.become_leader();
        }
        let msg = RaftMessage::RequestVote {
            term: self.term,
            last_log_index: self.log.last_index(),
            last_log_term: self.log.last_term(),
        };
        self.peers
            .iter()
            .map(|&to| Outbound {
                to,
                msg: msg.clone(),
            })
            .collect()
    }

    fn start_pre_vote(&mut self) -> Vec<Outbound> {
        self.role = Role::PreCandidate;
        self.pre_votes.clear();
        self.pre_votes.insert(self.id);
        self.reset_election_timer();
        if self.pre_votes.len() >= self.majority() {
            // Single-node cluster: skip straight to the real election.
            return self.start_election();
        }
        let msg = RaftMessage::PreVote {
            term: self.term + 1,
            last_log_index: self.log.last_index(),
            last_log_term: self.log.last_term(),
        };
        self.peers
            .iter()
            .map(|&to| Outbound {
                to,
                msg: msg.clone(),
            })
            .collect()
    }

    fn on_pre_vote(
        &mut self,
        from: NodeId,
        term: Term,
        last_log_index: LogIndex,
        last_log_term: Term,
    ) -> Vec<Outbound> {
        // Answer without mutating any state: would we vote for this log at
        // that term?
        let granted = !self.is_learner
            && term > self.term
            && self.log.candidate_up_to_date(last_log_index, last_log_term);
        vec![Outbound {
            to: from,
            msg: RaftMessage::PreVoteResp { term, granted },
        }]
    }

    fn on_pre_vote_resp(&mut self, from: NodeId, term: Term, granted: bool) -> Vec<Outbound> {
        if self.role != Role::PreCandidate || term != self.term + 1 || !granted {
            return Vec::new();
        }
        self.pre_votes.insert(from);
        if self.pre_votes.len() >= self.majority() {
            return self.start_election();
        }
        Vec::new()
    }

    fn on_request_vote(
        &mut self,
        from: NodeId,
        term: Term,
        last_log_index: LogIndex,
        last_log_term: Term,
    ) -> Vec<Outbound> {
        let granted = !self.is_learner
            && term == self.term
            && self.role == Role::Follower
            && (self.voted_for.is_none() || self.voted_for == Some(from))
            && self.log.candidate_up_to_date(last_log_index, last_log_term);
        if granted {
            self.voted_for = Some(from);
            self.persist_hard_state();
            self.reset_election_timer();
        }
        vec![Outbound {
            to: from,
            msg: RaftMessage::RequestVoteResp {
                term: self.term,
                granted,
            },
        }]
    }

    fn on_request_vote_resp(&mut self, from: NodeId, term: Term, granted: bool) -> Vec<Outbound> {
        if self.role != Role::Candidate || term != self.term || !granted {
            return Vec::new();
        }
        self.votes.insert(from);
        if self.votes.len() >= self.majority() {
            return self.become_leader();
        }
        Vec::new()
    }

    fn become_leader(&mut self) -> Vec<Outbound> {
        self.role = Role::Leader;
        self.leader_hint = Some(self.id);
        self.heartbeat_elapsed = 0;
        let next = self.log.last_index() + 1;
        self.next_index = self.repl_targets().map(|p| (p, next)).collect();
        self.match_index = self.repl_targets().map(|p| (p, 0)).collect();
        // Commit a no-op to learn the commit point of previous terms (§5.4.2).
        self.log.append_new(self.term, Vec::new(), EntryKind::Noop);
        self.persist_log();
        self.advance_commit();
        self.broadcast_appends()
    }

    fn become_follower(&mut self, term: Term, leader: Option<NodeId>) {
        let term_changed = term != self.term;
        self.role = Role::Follower;
        self.term = term;
        if term_changed {
            self.voted_for = None;
        }
        self.leader_hint = leader;
        self.votes.clear();
        self.pre_votes.clear();
        if term_changed {
            self.persist_hard_state();
        }
        self.reset_election_timer();
    }

    // ----- replication -----

    fn append_for(&mut self, peer: NodeId) -> Outbound {
        let next = *self.next_index.get(&peer).unwrap_or(&1);
        if next <= self.log.snapshot_index() {
            // Peer is behind our compaction horizon: ship a snapshot.
            return Outbound {
                to: peer,
                msg: RaftMessage::InstallSnapshot {
                    term: self.term,
                    last_index: self.log.snapshot_index(),
                    last_term: self.log.snapshot_term(),
                    data: self.snapshot_blob(),
                },
            };
        }
        let prev_log_index = next - 1;
        let prev_log_term = self.log.term_at(prev_log_index).unwrap_or(0);
        let entries = self
            .log
            .slice(next, self.log.last_index(), self.cfg.max_entries_per_append);
        Outbound {
            to: peer,
            msg: RaftMessage::AppendEntries {
                term: self.term,
                prev_log_index,
                prev_log_term,
                entries,
                leader_commit: self.commit_index,
            },
        }
    }

    fn broadcast_appends(&mut self) -> Vec<Outbound> {
        let targets: Vec<NodeId> = self.repl_targets().collect();
        targets.into_iter().map(|p| self.append_for(p)).collect()
    }

    /// Everyone the leader replicates to: other voters plus learners.
    fn repl_targets(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.peers.iter().chain(self.learners.iter()).copied()
    }

    fn on_append_entries(
        &mut self,
        from: NodeId,
        term: Term,
        prev_log_index: LogIndex,
        prev_log_term: Term,
        entries: Vec<Entry>,
        leader_commit: LogIndex,
    ) -> Vec<Outbound> {
        if term < self.term {
            return vec![Outbound {
                to: from,
                msg: RaftMessage::AppendEntriesResp {
                    term: self.term,
                    success: false,
                    match_index: 0,
                    conflict_index: 0,
                },
            }];
        }
        // Equal (or just-raised) term: `from` is the legitimate leader.
        self.become_follower(term, Some(from));

        // Entries at or below our snapshot are committed and necessarily match.
        let effective_prev_ok = if prev_log_index <= self.log.snapshot_index() {
            true
        } else {
            self.log.term_at(prev_log_index) == Some(prev_log_term)
        };
        if !effective_prev_ok {
            let conflict_index = if prev_log_index > self.log.last_index() {
                self.log.last_index() + 1
            } else {
                self.log.first_index_of_term_at(prev_log_index)
            };
            return vec![Outbound {
                to: from,
                msg: RaftMessage::AppendEntriesResp {
                    term: self.term,
                    success: false,
                    match_index: 0,
                    conflict_index,
                },
            }];
        }

        let new: Vec<Entry> = entries
            .into_iter()
            .filter(|e| e.index > self.log.snapshot_index())
            .collect();
        let match_index = match new.last() {
            Some(last_new) => last_new.index,
            None => prev_log_index.max(self.log.snapshot_index()),
        };
        if !new.is_empty() {
            self.log.append_entries(&new);
            self.persist_log();
        }
        let new_commit = leader_commit.min(match_index);
        if new_commit > self.commit_index {
            self.commit_index = new_commit;
            self.apply_committed();
        }
        vec![Outbound {
            to: from,
            msg: RaftMessage::AppendEntriesResp {
                term: self.term,
                success: true,
                match_index,
                conflict_index: 0,
            },
        }]
    }

    fn on_append_entries_resp(
        &mut self,
        from: NodeId,
        term: Term,
        success: bool,
        match_index: LogIndex,
        conflict_index: LogIndex,
    ) -> Vec<Outbound> {
        if self.role != Role::Leader || term != self.term {
            return Vec::new();
        }
        if success {
            let m = self.match_index.entry(from).or_insert(0);
            if match_index > *m {
                *m = match_index;
            }
            self.next_index.insert(from, match_index + 1);
            self.advance_commit();
            // Pipeline: if the follower is still behind, keep shipping.
            if *self.next_index.get(&from).unwrap() <= self.log.last_index() {
                return vec![self.append_for(from)];
            }
            Vec::new()
        } else {
            let next = self.next_index.entry(from).or_insert(1);
            let fallback = (*next).saturating_sub(1).max(1);
            *next = if conflict_index > 0 {
                conflict_index.min(fallback)
            } else {
                fallback
            };
            vec![self.append_for(from)]
        }
    }

    fn advance_commit(&mut self) {
        if self.role != Role::Leader {
            return;
        }
        let last = self.log.last_index();
        let mut n = last;
        while n > self.commit_index {
            // Only entries from the current term commit by counting (§5.4.2).
            if self.log.term_at(n) == Some(self.term) {
                // Only voters count toward the quorum; learners are excluded.
                let replicas = 1 + self
                    .peers
                    .iter()
                    .filter(|p| self.match_index.get(p).is_some_and(|&m| m >= n))
                    .count();
                if replicas >= self.majority() {
                    self.commit_index = n;
                    self.apply_committed();
                    return;
                }
            }
            n -= 1;
        }
    }

    fn apply_committed(&mut self) {
        while self.last_applied < self.commit_index {
            let idx = self.last_applied + 1;
            let entry = self
                .log
                .entry_at(idx)
                .cloned()
                .expect("applying entry that was compacted before application");
            self.last_applied = idx;
            match entry.kind {
                EntryKind::Normal => {
                    let output = self.sm.apply(entry.index, &entry.data);
                    let token = match self.pending.remove(&idx) {
                        Some((t, tok)) if t == entry.term => Some(tok),
                        _ => None,
                    };
                    self.applied_buf.push(Applied {
                        index: entry.index,
                        term: entry.term,
                        token,
                        output,
                    });
                }
                EntryKind::ConfChange => {
                    self.pending.remove(&idx);
                    if let Ok(cc) = ConfChange::decode(&entry.data) {
                        self.apply_conf_change(&cc);
                        self.conf_changes.push(cc);
                    }
                }
                EntryKind::Noop => {
                    self.pending.remove(&idx);
                }
            }
        }
        self.maybe_compact();
    }

    /// Mutates the configuration for a committed membership change. Runs on
    /// every member at apply time, so all members transition at the same log
    /// index.
    fn apply_conf_change(&mut self, cc: &ConfChange) {
        let n = cc.node;
        match cc.kind {
            ConfChangeKind::AddLearner => {
                if n != self.id && !self.peers.contains(&n) && !self.learners.contains(&n) {
                    self.learners.push(n);
                    if self.role == Role::Leader {
                        self.next_index.insert(n, self.log.last_index() + 1);
                        self.match_index.insert(n, 0);
                    }
                }
            }
            ConfChangeKind::PromoteVoter => {
                if n == self.id {
                    self.is_learner = false;
                } else {
                    self.learners.retain(|&l| l != n);
                    if !self.peers.contains(&n) {
                        self.peers.push(n);
                        if self.role == Role::Leader {
                            let next = self.log.last_index() + 1;
                            self.next_index.entry(n).or_insert(next);
                            self.match_index.entry(n).or_insert(0);
                        }
                    }
                }
            }
            ConfChangeKind::DemoteLearner => {
                if n == self.id {
                    self.is_learner = true;
                    if self.role != Role::Follower {
                        // A demoted leader/candidate must stop leading; it
                        // should have transferred leadership already.
                        let term = self.term;
                        self.become_follower(term, None);
                    }
                } else {
                    self.peers.retain(|&p| p != n);
                    if !self.learners.contains(&n) {
                        self.learners.push(n);
                    }
                }
            }
            ConfChangeKind::RemoveNode => {
                if n == self.id {
                    self.removed = true;
                    self.is_learner = true;
                    if self.role != Role::Follower {
                        let term = self.term;
                        self.become_follower(term, None);
                    }
                } else {
                    self.peers.retain(|&p| p != n);
                    self.learners.retain(|&l| l != n);
                    self.next_index.remove(&n);
                    self.match_index.remove(&n);
                    self.votes.remove(&n);
                    self.pre_votes.remove(&n);
                }
            }
        }
        // A voter removal shrinks the quorum: entries that were one ack
        // short may now be committed without another round trip.
        self.advance_commit();
    }

    /// Serializes the state machine together with the current configuration
    /// (see [`SnapshotBlob`]).
    fn snapshot_blob(&self) -> Vec<u8> {
        let mut voters = self.peers.clone();
        let mut learners = self.learners.clone();
        if self.is_learner {
            learners.push(self.id);
        } else {
            voters.push(self.id);
        }
        voters.sort_unstable();
        learners.sort_unstable();
        beehive_wire::to_vec(&SnapshotBlob {
            voters,
            learners,
            data: self.sm.snapshot(),
        })
        .expect("snapshot encodes")
    }

    /// Restores state machine and configuration from snapshot bytes. Bytes
    /// that do not decode as a [`SnapshotBlob`] are treated as a bare state
    /// machine image (pre-membership snapshots) and leave the static
    /// configuration untouched.
    fn restore_snapshot(&mut self, data: &[u8]) {
        match beehive_wire::from_slice::<SnapshotBlob>(data) {
            Ok(blob) => {
                self.peers = blob
                    .voters
                    .iter()
                    .copied()
                    .filter(|&p| p != self.id)
                    .collect();
                self.learners = blob
                    .learners
                    .iter()
                    .copied()
                    .filter(|&l| l != self.id)
                    .collect();
                if blob.voters.contains(&self.id) {
                    self.is_learner = false;
                } else if blob.learners.contains(&self.id) {
                    self.is_learner = true;
                }
                // A node in neither set keeps its standing flags: the
                // snapshot may predate its own AddLearner entry, which it
                // will apply right after catching up past the snapshot.
                self.sm.restore(&blob.data);
            }
            Err(_) => self.sm.restore(data),
        }
    }

    fn maybe_compact(&mut self) {
        if self.cfg.snapshot_threshold == 0 {
            return;
        }
        if self.last_applied - self.log.snapshot_index() >= self.cfg.snapshot_threshold {
            let data = self.snapshot_blob();
            let term = self
                .log
                .term_at(self.last_applied)
                .unwrap_or(self.log.snapshot_term());
            // The snapshot must be durable BEFORE the log is truncated
            // behind it: if the save fails, keep the log intact (nothing is
            // lost — a restart replays it) and fail stop.
            if let Err(e) = self.storage.save_snapshot(&SnapshotRecord {
                index: self.last_applied,
                term,
                data,
            }) {
                self.fatal.get_or_insert(e);
                return;
            }
            self.snapshots_taken += 1;
            self.log.compact(self.last_applied);
            self.persist_log();
        }
    }

    fn on_install_snapshot(
        &mut self,
        from: NodeId,
        term: Term,
        last_index: LogIndex,
        last_term: Term,
        data: Vec<u8>,
    ) -> Vec<Outbound> {
        if term < self.term {
            return vec![Outbound {
                to: from,
                msg: RaftMessage::InstallSnapshotResp {
                    term: self.term,
                    match_index: 0,
                },
            }];
        }
        self.become_follower(term, Some(from));
        if last_index <= self.commit_index {
            // Stale snapshot; we already have everything it covers.
            return vec![Outbound {
                to: from,
                msg: RaftMessage::InstallSnapshotResp {
                    term: self.term,
                    match_index: self.commit_index,
                },
            }];
        }
        self.restore_snapshot(&data);
        self.log.reset_to_snapshot(last_index, last_term);
        self.commit_index = last_index;
        self.last_applied = last_index;
        self.snapshots_installed += 1;
        if let Err(e) = self.storage.save_snapshot(&SnapshotRecord {
            index: last_index,
            term: last_term,
            data,
        }) {
            // The in-memory restore already happened; going inert here is
            // safe (a restart re-requests the snapshot) but acking is not.
            self.fatal.get_or_insert(e);
            return Vec::new();
        }
        self.persist_log();
        vec![Outbound {
            to: from,
            msg: RaftMessage::InstallSnapshotResp {
                term: self.term,
                match_index: last_index,
            },
        }]
    }

    fn on_install_snapshot_resp(
        &mut self,
        from: NodeId,
        term: Term,
        match_index: LogIndex,
    ) -> Vec<Outbound> {
        if self.role != Role::Leader || term != self.term {
            return Vec::new();
        }
        let m = self.match_index.entry(from).or_insert(0);
        if match_index > *m {
            *m = match_index;
        }
        self.next_index.insert(from, match_index + 1);
        self.advance_commit();
        if *self.next_index.get(&from).unwrap() <= self.log.last_index() {
            return vec![self.append_for(from)];
        }
        Vec::new()
    }

    // ----- persistence -----
    //
    // Failures latch into `fatal` rather than propagating through every
    // state-transition path: the transition itself has already happened in
    // memory, and the latch guarantees the node emits nothing and accepts
    // nothing from that point on, which is indistinguishable (to the rest of
    // the cluster) from having crashed just before the transition.

    fn persist_hard_state(&mut self) {
        let hs = HardState {
            term: self.term,
            voted_for: self.voted_for,
        };
        if let Err(e) = self.storage.save_hard_state(&hs) {
            self.fatal.get_or_insert(e);
        }
    }

    fn persist_log(&mut self) {
        if let Err(e) = self.storage.save_log(
            self.log.snapshot_index(),
            self.log.snapshot_term(),
            self.log.entries(),
        ) {
            self.fatal.get_or_insert(e);
        }
    }
}

impl<SM: StateMachine> std::fmt::Debug for RaftNode<SM> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RaftNode")
            .field("id", &self.id)
            .field("role", &self.role)
            .field("term", &self.term)
            .field("commit", &self.commit_index)
            .field("applied", &self.last_applied)
            .field("last_log", &self.log.last_index())
            .finish()
    }
}
