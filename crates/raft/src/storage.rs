//! Durable state: current term, vote, log entries and snapshot.
//!
//! [`MemStorage`] is the default for simulations and tests; [`FileStorage`]
//! persists through `beehive-wire` for single-process durability demos and
//! restart tests.

use std::io::{Read, Write};
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use crate::types::{Entry, LogIndex, Term};

/// Term/vote pair that must be fsynced before answering RPCs (Raft Fig. 2).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HardState {
    /// Latest term this node has seen.
    pub term: Term,
    /// Candidate voted for in `term`, if any.
    pub voted_for: Option<crate::types::NodeId>,
}

/// Snapshot blob plus the log position it covers.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotRecord {
    /// Index the snapshot covers.
    pub index: LogIndex,
    /// Term at `index`.
    pub term: Term,
    /// Serialized state machine.
    pub data: Vec<u8>,
}

/// Persistence interface. Implementations must make `save_*` durable before
/// returning (MemStorage trivially so).
pub trait Storage: Send + 'static {
    /// Persists term and vote.
    fn save_hard_state(&mut self, hs: &HardState);
    /// Persists the entire suffix of the log (called after mutation).
    fn save_log(&mut self, snapshot_index: LogIndex, snapshot_term: Term, entries: &[Entry]);
    /// Persists a snapshot blob.
    fn save_snapshot(&mut self, snap: &SnapshotRecord);
    /// Loads persisted state, if any.
    fn load(&mut self) -> Option<PersistedState>;
}

/// Everything a node needs to restart.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PersistedState {
    /// Term/vote.
    pub hard_state: HardState,
    /// Snapshot point of the persisted log.
    pub snapshot_index: LogIndex,
    /// Term at the snapshot point.
    pub snapshot_term: Term,
    /// Log entries after the snapshot.
    pub entries: Vec<Entry>,
    /// Latest snapshot blob.
    pub snapshot: Option<SnapshotRecord>,
}

/// Volatile storage: keeps everything in memory. Restart tests can clone the
/// inner state and feed it to a new node.
#[derive(Debug, Default)]
pub struct MemStorage {
    state: PersistedState,
}

impl MemStorage {
    /// Empty storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of the currently persisted state (for restart simulation).
    pub fn persisted(&self) -> PersistedState {
        self.state.clone()
    }

    /// Builds storage pre-loaded with `state` (simulated restart).
    pub fn from_persisted(state: PersistedState) -> Self {
        MemStorage { state }
    }
}

impl Storage for MemStorage {
    fn save_hard_state(&mut self, hs: &HardState) {
        self.state.hard_state = hs.clone();
    }

    fn save_log(&mut self, snapshot_index: LogIndex, snapshot_term: Term, entries: &[Entry]) {
        self.state.snapshot_index = snapshot_index;
        self.state.snapshot_term = snapshot_term;
        self.state.entries = entries.to_vec();
    }

    fn save_snapshot(&mut self, snap: &SnapshotRecord) {
        self.state.snapshot = Some(snap.clone());
    }

    fn load(&mut self) -> Option<PersistedState> {
        if self.state.hard_state == HardState::default()
            && self.state.entries.is_empty()
            && self.state.snapshot.is_none()
        {
            None
        } else {
            Some(self.state.clone())
        }
    }
}

/// Memory storage whose persisted state is shared behind an `Arc`, so a test
/// harness can crash a node (dropping the `RaftNode`) and later restart it
/// from exactly what it had persisted — including its vote, which matters for
/// election safety.
#[derive(Debug, Clone, Default)]
pub struct SharedMemStorage {
    state: std::sync::Arc<parking_lot::Mutex<PersistedState>>,
}

impl SharedMemStorage {
    /// Empty shared storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// A second handle to the same persisted state.
    pub fn handle(&self) -> SharedMemStorage {
        SharedMemStorage {
            state: self.state.clone(),
        }
    }

    /// Snapshot of the persisted contents.
    pub fn persisted(&self) -> PersistedState {
        self.state.lock().clone()
    }
}

impl Storage for SharedMemStorage {
    fn save_hard_state(&mut self, hs: &HardState) {
        self.state.lock().hard_state = hs.clone();
    }

    fn save_log(&mut self, snapshot_index: LogIndex, snapshot_term: Term, entries: &[Entry]) {
        let mut st = self.state.lock();
        st.snapshot_index = snapshot_index;
        st.snapshot_term = snapshot_term;
        st.entries = entries.to_vec();
    }

    fn save_snapshot(&mut self, snap: &SnapshotRecord) {
        self.state.lock().snapshot = Some(snap.clone());
    }

    fn load(&mut self) -> Option<PersistedState> {
        let st = self.state.lock();
        if st.hard_state == HardState::default() && st.entries.is_empty() && st.snapshot.is_none() {
            None
        } else {
            Some(st.clone())
        }
    }
}

/// File-backed storage. The whole persisted state is rewritten on each save —
/// simple and adequate for a control-plane registry whose log is compacted
/// aggressively; a production deployment would use an append-only segment
/// format.
#[derive(Debug)]
pub struct FileStorage {
    path: PathBuf,
    state: PersistedState,
}

impl FileStorage {
    /// Opens (or creates) storage at `path`.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        let state = match std::fs::File::open(&path) {
            Ok(mut f) => {
                let mut buf = Vec::new();
                f.read_to_end(&mut buf)?;
                if buf.is_empty() {
                    PersistedState::default()
                } else {
                    beehive_wire::from_slice(&buf).map_err(|e| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                    })?
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => PersistedState::default(),
            Err(e) => return Err(e),
        };
        Ok(FileStorage { path, state })
    }

    fn flush(&self) {
        let buf = beehive_wire::to_vec(&self.state).expect("serialize persisted state");
        let tmp = self.path.with_extension("tmp");
        let mut f = std::fs::File::create(&tmp).expect("create raft storage tmp");
        f.write_all(&buf).expect("write raft storage");
        f.sync_all().expect("sync raft storage");
        std::fs::rename(&tmp, &self.path).expect("atomically replace raft storage");
    }
}

impl Storage for FileStorage {
    fn save_hard_state(&mut self, hs: &HardState) {
        self.state.hard_state = hs.clone();
        self.flush();
    }

    fn save_log(&mut self, snapshot_index: LogIndex, snapshot_term: Term, entries: &[Entry]) {
        self.state.snapshot_index = snapshot_index;
        self.state.snapshot_term = snapshot_term;
        self.state.entries = entries.to_vec();
        self.flush();
    }

    fn save_snapshot(&mut self, snap: &SnapshotRecord) {
        self.state.snapshot = Some(snap.clone());
        self.flush();
    }

    fn load(&mut self) -> Option<PersistedState> {
        if self.state.hard_state == HardState::default()
            && self.state.entries.is_empty()
            && self.state.snapshot.is_none()
        {
            None
        } else {
            Some(self.state.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::EntryKind;

    fn sample_entries() -> Vec<Entry> {
        vec![
            Entry {
                term: 1,
                index: 1,
                data: vec![1],
                kind: EntryKind::Normal,
            },
            Entry {
                term: 2,
                index: 2,
                data: vec![],
                kind: EntryKind::Noop,
            },
        ]
    }

    #[test]
    fn mem_storage_roundtrip() {
        let mut s = MemStorage::new();
        assert!(s.load().is_none());
        s.save_hard_state(&HardState {
            term: 3,
            voted_for: Some(2),
        });
        s.save_log(0, 0, &sample_entries());
        let loaded = s.load().unwrap();
        assert_eq!(loaded.hard_state.term, 3);
        assert_eq!(loaded.entries.len(), 2);
    }

    #[test]
    fn file_storage_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("bh-raft-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("node1.raft");
        let _ = std::fs::remove_file(&path);

        {
            let mut s = FileStorage::open(&path).unwrap();
            assert!(s.load().is_none());
            s.save_hard_state(&HardState {
                term: 7,
                voted_for: None,
            });
            s.save_log(1, 1, &sample_entries());
            s.save_snapshot(&SnapshotRecord {
                index: 1,
                term: 1,
                data: vec![42],
            });
        }
        {
            let mut s = FileStorage::open(&path).unwrap();
            let loaded = s.load().unwrap();
            assert_eq!(loaded.hard_state.term, 7);
            assert_eq!(loaded.snapshot_index, 1);
            assert_eq!(loaded.snapshot.unwrap().data, vec![42]);
        }
        let _ = std::fs::remove_file(&path);
    }
}
