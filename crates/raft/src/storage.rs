//! Durable state: current term, vote, log entries and snapshot.
//!
//! [`MemStorage`] is the default for simulations and tests; [`FileStorage`]
//! persists through `beehive-wire` for single-process durability demos and
//! restart tests.
//!
//! Every `save_*` returns a [`StorageError`] instead of panicking: a raft
//! node that cannot persist must *fail stop* (an unpersisted vote or entry
//! that the node later acts on can elect two leaders in one term), but the
//! decision to halt — and the flight-recorder event that explains why —
//! belongs to the embedder, not to an `expect()` deep in the write path.

use std::fmt;
use std::io::{Read, Write};
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use crate::types::{Entry, LogIndex, Term};

/// Why a durable operation failed. Fail-stop: after any `save_*` error the
/// node's persisted state may trail its in-memory state, so the node must
/// stop participating (see `RaftNode::storage_fault`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The underlying IO failed (disk full, permission, device error).
    Io {
        /// Which durable operation was in flight.
        op: &'static str,
        /// OS-level detail.
        detail: String,
    },
    /// Persisted bytes exist but fail checksum or structural validation.
    /// Never auto-healed: restarting from guessed state diverges replicas.
    Corrupt {
        /// What failed to validate.
        detail: String,
    },
    /// The in-memory state could not be serialized (a bug, not a disk
    /// condition — surfaced rather than panicking so it reaches the journal).
    Encode {
        /// Serializer error.
        detail: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { op, detail } => write!(f, "durable {op} failed: {detail}"),
            StorageError::Corrupt { detail } => write!(f, "durable state corrupt: {detail}"),
            StorageError::Encode { detail } => write!(f, "durable state encode failed: {detail}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// When file-backed storage calls `fsync`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` before every rename (the raft correctness requirement: term,
    /// vote and log entries must hit the platter before the node answers).
    #[default]
    Always,
    /// Skip `fsync`; the rename is still atomic, so a process crash loses at
    /// most the tail since the last OS writeback and never corrupts the
    /// file. A power loss can lose acknowledged writes — benches and tests
    /// only.
    Never,
}

/// Term/vote pair that must be fsynced before answering RPCs (Raft Fig. 2).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HardState {
    /// Latest term this node has seen.
    pub term: Term,
    /// Candidate voted for in `term`, if any.
    pub voted_for: Option<crate::types::NodeId>,
}

/// Snapshot blob plus the log position it covers.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotRecord {
    /// Index the snapshot covers.
    pub index: LogIndex,
    /// Term at `index`.
    pub term: Term,
    /// Serialized state machine.
    pub data: Vec<u8>,
}

/// Persistence interface. Implementations must make `save_*` durable before
/// returning `Ok` (MemStorage trivially so).
pub trait Storage: Send + 'static {
    /// Persists term and vote.
    fn save_hard_state(&mut self, hs: &HardState) -> Result<(), StorageError>;
    /// Persists the entire suffix of the log (called after mutation).
    fn save_log(
        &mut self,
        snapshot_index: LogIndex,
        snapshot_term: Term,
        entries: &[Entry],
    ) -> Result<(), StorageError>;
    /// Persists a snapshot blob.
    fn save_snapshot(&mut self, snap: &SnapshotRecord) -> Result<(), StorageError>;
    /// Loads persisted state, if any. `Err` means bytes exist but cannot be
    /// trusted — the caller must fail stop, not start fresh.
    fn load(&mut self) -> Result<Option<PersistedState>, StorageError>;
}

/// Everything a node needs to restart.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PersistedState {
    /// Term/vote.
    pub hard_state: HardState,
    /// Snapshot point of the persisted log.
    pub snapshot_index: LogIndex,
    /// Term at the snapshot point.
    pub snapshot_term: Term,
    /// Log entries after the snapshot.
    pub entries: Vec<Entry>,
    /// Latest snapshot blob.
    pub snapshot: Option<SnapshotRecord>,
}

impl PersistedState {
    fn is_empty(&self) -> bool {
        self.hard_state == HardState::default()
            && self.entries.is_empty()
            && self.snapshot.is_none()
            && self.snapshot_index == 0
    }
}

/// Volatile storage: keeps everything in memory. Restart tests can clone the
/// inner state and feed it to a new node.
#[derive(Debug, Default)]
pub struct MemStorage {
    state: PersistedState,
}

impl MemStorage {
    /// Empty storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of the currently persisted state (for restart simulation).
    pub fn persisted(&self) -> PersistedState {
        self.state.clone()
    }

    /// Builds storage pre-loaded with `state` (simulated restart).
    pub fn from_persisted(state: PersistedState) -> Self {
        MemStorage { state }
    }
}

impl Storage for MemStorage {
    fn save_hard_state(&mut self, hs: &HardState) -> Result<(), StorageError> {
        self.state.hard_state = hs.clone();
        Ok(())
    }

    fn save_log(
        &mut self,
        snapshot_index: LogIndex,
        snapshot_term: Term,
        entries: &[Entry],
    ) -> Result<(), StorageError> {
        self.state.snapshot_index = snapshot_index;
        self.state.snapshot_term = snapshot_term;
        self.state.entries = entries.to_vec();
        Ok(())
    }

    fn save_snapshot(&mut self, snap: &SnapshotRecord) -> Result<(), StorageError> {
        self.state.snapshot = Some(snap.clone());
        Ok(())
    }

    fn load(&mut self) -> Result<Option<PersistedState>, StorageError> {
        if self.state.is_empty() {
            Ok(None)
        } else {
            Ok(Some(self.state.clone()))
        }
    }
}

/// Memory storage whose persisted state is shared behind an `Arc`, so a test
/// harness can crash a node (dropping the `RaftNode`) and later restart it
/// from exactly what it had persisted — including its vote, which matters for
/// election safety.
#[derive(Debug, Clone, Default)]
pub struct SharedMemStorage {
    state: std::sync::Arc<parking_lot::Mutex<PersistedState>>,
}

impl SharedMemStorage {
    /// Empty shared storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// A second handle to the same persisted state.
    pub fn handle(&self) -> SharedMemStorage {
        SharedMemStorage {
            state: self.state.clone(),
        }
    }

    /// Snapshot of the persisted contents.
    pub fn persisted(&self) -> PersistedState {
        self.state.lock().clone()
    }
}

impl Storage for SharedMemStorage {
    fn save_hard_state(&mut self, hs: &HardState) -> Result<(), StorageError> {
        self.state.lock().hard_state = hs.clone();
        Ok(())
    }

    fn save_log(
        &mut self,
        snapshot_index: LogIndex,
        snapshot_term: Term,
        entries: &[Entry],
    ) -> Result<(), StorageError> {
        let mut st = self.state.lock();
        st.snapshot_index = snapshot_index;
        st.snapshot_term = snapshot_term;
        st.entries = entries.to_vec();
        Ok(())
    }

    fn save_snapshot(&mut self, snap: &SnapshotRecord) -> Result<(), StorageError> {
        self.state.lock().snapshot = Some(snap.clone());
        Ok(())
    }

    fn load(&mut self) -> Result<Option<PersistedState>, StorageError> {
        let st = self.state.lock();
        if st.is_empty() {
            Ok(None)
        } else {
            Ok(Some(st.clone()))
        }
    }
}

/// File-backed storage. The whole persisted state is rewritten on each save
/// as a single checksummed `beehive-wire` record (tmp + fsync + rename), so
/// a crash leaves either the old file or the new one — never a blend — and a
/// flipped bit is caught at reopen instead of replayed into the registry.
/// Simple and adequate for a control-plane registry whose log is compacted
/// aggressively; a production deployment would use an append-only segment
/// format.
#[derive(Debug)]
pub struct FileStorage {
    path: PathBuf,
    state: PersistedState,
    fsync: FsyncPolicy,
}

impl FileStorage {
    /// Opens (or creates) storage at `path`, fsyncing every save.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        Self::open_with(path, FsyncPolicy::Always)
    }

    /// Opens (or creates) storage at `path` with an explicit fsync policy.
    ///
    /// `InvalidData` means the file exists but fails its checksum or does
    /// not decode — corruption, which callers must treat as fatal rather
    /// than starting from an empty state on top of a lost vote.
    pub fn open_with(path: impl Into<PathBuf>, fsync: FsyncPolicy) -> std::io::Result<Self> {
        let path = path.into();
        let state = match std::fs::File::open(&path) {
            Ok(mut f) => {
                let mut buf = Vec::new();
                f.read_to_end(&mut buf)?;
                if buf.is_empty() {
                    PersistedState::default()
                } else {
                    Self::decode(&buf)
                        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => PersistedState::default(),
            Err(e) => return Err(e),
        };
        Ok(FileStorage { path, state, fsync })
    }

    /// Decodes a storage file: one checksummed record holding the wire-coded
    /// `PersistedState`. The file is written atomically as a whole, so there
    /// is no torn-tail case to tolerate here — anything short of a single
    /// clean record is corruption. (No fallback to the pre-checksum bare
    /// format: garbage can decode as "valid" wire bytes, which is exactly
    /// the silent divergence the checksum exists to stop.)
    fn decode(buf: &[u8]) -> Result<PersistedState, String> {
        match beehive_wire::record::scan_records(buf) {
            Ok(scan) if scan.torn.is_none() && scan.payloads.len() == 1 => {
                beehive_wire::from_slice(&scan.payloads[0])
                    .map_err(|e| format!("checksummed state does not decode: {e}"))
            }
            Ok(scan) => match scan.torn {
                Some(t) => Err(format!(
                    "state file is not one whole record ({} after {} valid bytes)",
                    t.reason, t.valid_len
                )),
                None => Err(format!(
                    "state file holds {} records, expected exactly 1",
                    scan.payloads.len()
                )),
            },
            Err(e) => Err(e.to_string()),
        }
    }

    fn flush(&self) -> Result<(), StorageError> {
        let body = beehive_wire::to_vec(&self.state).map_err(|e| StorageError::Encode {
            detail: e.to_string(),
        })?;
        let buf = beehive_wire::record::record_frame(&body);
        let io_err = |op: &'static str| {
            move |e: std::io::Error| StorageError::Io {
                op,
                detail: e.to_string(),
            }
        };
        let tmp = self.path.with_extension("tmp");
        let mut f = std::fs::File::create(&tmp).map_err(io_err("create raft storage tmp"))?;
        f.write_all(&buf).map_err(io_err("write raft storage"))?;
        if self.fsync == FsyncPolicy::Always {
            f.sync_all().map_err(io_err("sync raft storage"))?;
        }
        drop(f);
        std::fs::rename(&tmp, &self.path).map_err(io_err("replace raft storage"))
    }
}

impl Storage for FileStorage {
    fn save_hard_state(&mut self, hs: &HardState) -> Result<(), StorageError> {
        self.state.hard_state = hs.clone();
        self.flush()
    }

    fn save_log(
        &mut self,
        snapshot_index: LogIndex,
        snapshot_term: Term,
        entries: &[Entry],
    ) -> Result<(), StorageError> {
        self.state.snapshot_index = snapshot_index;
        self.state.snapshot_term = snapshot_term;
        self.state.entries = entries.to_vec();
        self.flush()
    }

    fn save_snapshot(&mut self, snap: &SnapshotRecord) -> Result<(), StorageError> {
        self.state.snapshot = Some(snap.clone());
        self.flush()
    }

    fn load(&mut self) -> Result<Option<PersistedState>, StorageError> {
        if self.state.is_empty() {
            Ok(None)
        } else {
            Ok(Some(self.state.clone()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::EntryKind;

    fn sample_entries() -> Vec<Entry> {
        vec![
            Entry {
                term: 1,
                index: 1,
                data: vec![1],
                kind: EntryKind::Normal,
            },
            Entry {
                term: 2,
                index: 2,
                data: vec![],
                kind: EntryKind::Noop,
            },
        ]
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bh-raft-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn mem_storage_roundtrip() {
        let mut s = MemStorage::new();
        assert!(s.load().unwrap().is_none());
        s.save_hard_state(&HardState {
            term: 3,
            voted_for: Some(2),
        })
        .unwrap();
        s.save_log(0, 0, &sample_entries()).unwrap();
        let loaded = s.load().unwrap().unwrap();
        assert_eq!(loaded.hard_state.term, 3);
        assert_eq!(loaded.entries.len(), 2);
    }

    #[test]
    fn file_storage_survives_reopen() {
        let path = temp_path("node1.raft");
        {
            let mut s = FileStorage::open(&path).unwrap();
            assert!(s.load().unwrap().is_none());
            s.save_hard_state(&HardState {
                term: 7,
                voted_for: None,
            })
            .unwrap();
            s.save_log(1, 1, &sample_entries()).unwrap();
            s.save_snapshot(&SnapshotRecord {
                index: 1,
                term: 1,
                data: vec![42],
            })
            .unwrap();
        }
        {
            let mut s = FileStorage::open(&path).unwrap();
            let loaded = s.load().unwrap().unwrap();
            assert_eq!(loaded.hard_state.term, 7);
            assert_eq!(loaded.snapshot_index, 1);
            assert_eq!(loaded.snapshot.unwrap().data, vec![42]);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_storage_rejects_flipped_bit() {
        let path = temp_path("node2.raft");
        {
            let mut s = FileStorage::open(&path).unwrap();
            s.save_hard_state(&HardState {
                term: 9,
                voted_for: Some(1),
            })
            .unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();
        let err = FileStorage::open(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_storage_rejects_truncated_state() {
        let path = temp_path("node3.raft");
        {
            let mut s = FileStorage::open(&path).unwrap();
            s.save_log(1, 1, &sample_entries()).unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        // A half-written state file can only come from a non-atomic writer
        // (or a mangled rename) — reject it rather than booting empty.
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let err = FileStorage::open(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fsync_never_still_roundtrips() {
        let path = temp_path("node4.raft");
        {
            let mut s = FileStorage::open_with(&path, FsyncPolicy::Never).unwrap();
            s.save_log(2, 1, &sample_entries()).unwrap();
        }
        let mut s = FileStorage::open_with(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(s.load().unwrap().unwrap().snapshot_index, 2);
        let _ = std::fs::remove_file(&path);
    }
}
