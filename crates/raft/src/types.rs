//! Wire-level types: identifiers, log entries and RPC messages.

use serde::{Deserialize, Serialize};

/// Identifier of a Raft node. In Beehive this is the hive id.
pub type NodeId = u64;

/// A Raft term.
pub type Term = u64;

/// Index into the replicated log (1-based; 0 means "empty log").
pub type LogIndex = u64;

/// What a log entry carries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EntryKind {
    /// A client proposal carrying opaque state-machine bytes.
    Normal,
    /// An empty entry a new leader appends to commit entries from prior terms
    /// (Raft §5.4.2 / §8).
    Noop,
    /// A cluster membership change ([`ConfChange`] encoded in the entry
    /// data). Applied when the entry commits; at most one may be in flight
    /// at a time — the single-server special case of joint consensus that
    /// keeps any two successive configurations' quorums overlapping
    /// (Raft §6 / etcd's one-at-a-time changes).
    ConfChange,
}

/// What a [`ConfChange`] does to the addressed node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConfChangeKind {
    /// Adds the node as a non-voting learner (replicated to, no quorum).
    AddLearner,
    /// Promotes a caught-up learner to a voting member.
    PromoteVoter,
    /// Demotes a voter back to a learner (drain step 1).
    DemoteLearner,
    /// Removes the node from the configuration entirely (drain step 2).
    RemoveNode,
}

/// A single-node membership change, carried in a log entry of kind
/// [`EntryKind::ConfChange`] and applied by every member when the entry
/// commits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfChange {
    /// The node being added / promoted / demoted / removed.
    pub node: NodeId,
    /// Transport address of the node (empty when not applicable, e.g.
    /// removals). Rides the log so every member — including ones that catch
    /// up later from a snapshot — learns how to reach a joiner.
    pub addr: String,
    /// What to do with `node`.
    pub kind: ConfChangeKind,
}

impl ConfChange {
    /// Serializes for embedding in a log entry.
    pub fn encode(&self) -> Vec<u8> {
        beehive_wire::to_vec(self).expect("conf change encodes")
    }

    /// Decodes from log-entry bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, beehive_wire::Error> {
        beehive_wire::from_slice(bytes)
    }
}

/// A single replicated log entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Entry {
    /// Term in which the entry was created.
    pub term: Term,
    /// Position in the log.
    pub index: LogIndex,
    /// Entry payload; empty for no-ops.
    pub data: Vec<u8>,
    /// Normal proposal or leader no-op.
    pub kind: EntryKind,
}

/// Raft RPCs, exchanged as plain values; the embedder is the transport.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RaftMessage {
    /// Candidate solicits a vote (Raft §5.2).
    RequestVote {
        /// Candidate's term.
        term: Term,
        /// Index of candidate's last log entry.
        last_log_index: LogIndex,
        /// Term of candidate's last log entry.
        last_log_term: Term,
    },
    /// Reply to `RequestVote`.
    RequestVoteResp {
        /// Responder's current term.
        term: Term,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Leader replicates entries / heartbeats (Raft §5.3).
    AppendEntries {
        /// Leader's term.
        term: Term,
        /// Index of the entry immediately preceding `entries`.
        prev_log_index: LogIndex,
        /// Term of the `prev_log_index` entry.
        prev_log_term: Term,
        /// Entries to append (empty for heartbeat).
        entries: Vec<Entry>,
        /// Leader's commit index.
        leader_commit: LogIndex,
    },
    /// Reply to `AppendEntries`.
    AppendEntriesResp {
        /// Responder's current term.
        term: Term,
        /// Whether the append matched.
        success: bool,
        /// Highest log index known to match the leader (valid when `success`).
        match_index: LogIndex,
        /// On failure, a hint for the leader to rewind `next_index` quickly.
        conflict_index: LogIndex,
    },
    /// Leader transfers a snapshot to a slow follower (Raft §7).
    InstallSnapshot {
        /// Leader's term.
        term: Term,
        /// The snapshot replaces the log through this index.
        last_index: LogIndex,
        /// Term of `last_index`.
        last_term: Term,
        /// Serialized state machine.
        data: Vec<u8>,
    },
    /// Reply to `InstallSnapshot`.
    InstallSnapshotResp {
        /// Responder's current term.
        term: Term,
        /// The follower's new match index.
        match_index: LogIndex,
    },
    /// Pre-vote probe (Raft §9.6 / etcd PreVote): a would-be candidate asks
    /// whether it *could* win an election at `term` before disturbing the
    /// cluster by actually incrementing its term. Receivers answer without
    /// changing any persistent state.
    PreVote {
        /// The term the sender would campaign at (its current term + 1).
        term: Term,
        /// Index of the sender's last log entry.
        last_log_index: LogIndex,
        /// Term of the sender's last log entry.
        last_log_term: Term,
    },
    /// Reply to `PreVote`.
    PreVoteResp {
        /// The term the probe asked about (echoed).
        term: Term,
        /// Whether a real vote would be granted.
        granted: bool,
    },
    /// Leadership transfer (Raft §3.10 / etcd `MsgTimeoutNow`): the leader
    /// tells a caught-up voter to start an election *immediately*, skipping
    /// both its election timeout and the pre-vote probe, so a draining
    /// leader can hand off before demoting itself.
    TimeoutNow {
        /// The transferring leader's term.
        term: Term,
    },
}

impl RaftMessage {
    /// The term carried by this message.
    pub fn term(&self) -> Term {
        match self {
            RaftMessage::RequestVote { term, .. }
            | RaftMessage::RequestVoteResp { term, .. }
            | RaftMessage::AppendEntries { term, .. }
            | RaftMessage::AppendEntriesResp { term, .. }
            | RaftMessage::InstallSnapshot { term, .. }
            | RaftMessage::InstallSnapshotResp { term, .. }
            | RaftMessage::PreVote { term, .. }
            | RaftMessage::PreVoteResp { term, .. }
            | RaftMessage::TimeoutNow { term } => *term,
        }
    }

    /// Rough wire size used by simulators for bandwidth accounting.
    pub fn encoded_len(&self) -> usize {
        beehive_wire::encoded_len(self).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_roundtrip_through_wire() {
        let msgs = vec![
            RaftMessage::RequestVote {
                term: 3,
                last_log_index: 10,
                last_log_term: 2,
            },
            RaftMessage::RequestVoteResp {
                term: 3,
                granted: true,
            },
            RaftMessage::AppendEntries {
                term: 4,
                prev_log_index: 9,
                prev_log_term: 2,
                entries: vec![Entry {
                    term: 4,
                    index: 10,
                    data: vec![1, 2],
                    kind: EntryKind::Normal,
                }],
                leader_commit: 8,
            },
            RaftMessage::AppendEntriesResp {
                term: 4,
                success: false,
                match_index: 0,
                conflict_index: 5,
            },
            RaftMessage::InstallSnapshot {
                term: 5,
                last_index: 100,
                last_term: 4,
                data: vec![9; 16],
            },
            RaftMessage::InstallSnapshotResp {
                term: 5,
                match_index: 100,
            },
            RaftMessage::TimeoutNow { term: 6 },
        ];
        for m in msgs {
            let buf = beehive_wire::to_vec(&m).unwrap();
            let back: RaftMessage = beehive_wire::from_slice(&buf).unwrap();
            assert_eq!(back, m);
            assert_eq!(m.encoded_len(), buf.len());
        }
    }

    #[test]
    fn conf_change_roundtrips() {
        let cc = ConfChange {
            node: 4,
            addr: "127.0.0.1:9404".to_string(),
            kind: ConfChangeKind::AddLearner,
        };
        let back = ConfChange::decode(&cc.encode()).unwrap();
        assert_eq!(back, cc);
    }

    #[test]
    fn term_accessor_matches() {
        let m = RaftMessage::RequestVote {
            term: 9,
            last_log_index: 0,
            last_log_term: 0,
        };
        assert_eq!(m.term(), 9);
    }
}
