//! Tests for non-voting learners: they follow the log and apply entries but
//! never vote, never campaign and never count toward the quorum.

use beehive_raft::{Config, KvCounter, MemStorage, RaftMessage, RaftNode, Role};

/// Builds a 3-voter + 1-learner group and hand-delivers messages, giving the
/// test full control over scheduling.
struct Net {
    nodes: Vec<RaftNode<KvCounter>>, // ids 1..=4; node 4 is the learner
    queue: Vec<(u64, u64, RaftMessage)>, // (from, to, msg)
}

impl Net {
    fn new() -> Self {
        let voters = vec![1u64, 2, 3];
        let mut nodes = Vec::new();
        for &id in &voters {
            let peers: Vec<u64> = voters.iter().copied().filter(|&p| p != id).collect();
            nodes.push(RaftNode::with_membership(
                id,
                peers,
                vec![4],
                false,
                Config {
                    rng_seed: id,
                    ..Config::default()
                },
                KvCounter::default(),
                Box::new(MemStorage::new()),
            ));
        }
        nodes.push(RaftNode::new_learner(
            4,
            voters,
            Config {
                rng_seed: 4,
                ..Config::default()
            },
            KvCounter::default(),
            Box::new(MemStorage::new()),
        ));
        Net {
            nodes,
            queue: Vec::new(),
        }
    }

    fn node(&self, id: u64) -> &RaftNode<KvCounter> {
        &self.nodes[(id - 1) as usize]
    }

    fn node_mut(&mut self, id: u64) -> &mut RaftNode<KvCounter> {
        &mut self.nodes[(id - 1) as usize]
    }

    fn tick_all(&mut self) {
        for id in 1..=4u64 {
            let out = self.node_mut(id).tick();
            for o in out {
                self.queue.push((id, o.to, o.msg));
            }
        }
        self.drain();
    }

    fn drain(&mut self) {
        while let Some((from, to, msg)) = self.queue.pop() {
            let out = self.node_mut(to).step(from, msg);
            for o in out {
                self.queue.push((to, o.to, o.msg));
            }
        }
    }

    fn run_until_leader(&mut self) -> u64 {
        for _ in 0..500 {
            self.tick_all();
            if let Some(l) = (1..=3u64).find(|&id| self.node(id).is_leader()) {
                return l;
            }
        }
        panic!("no leader");
    }
}

#[test]
fn learner_replicates_and_applies() {
    let mut net = Net::new();
    let leader = net.run_until_leader();
    let (_, out) = net.node_mut(leader).propose_now(vec![10]).unwrap();
    for o in out {
        net.queue.push((leader, o.to, o.msg));
    }
    net.drain();
    for _ in 0..20 {
        net.tick_all();
    }
    assert_eq!(
        net.node(4).state_machine().total,
        10,
        "learner did not apply"
    );
    assert!(net.node(4).is_learner());
    assert_eq!(net.node(4).role(), Role::Follower);
}

#[test]
fn learner_never_campaigns() {
    let mut net = Net::new();
    // Tick only the learner far past any election timeout: it must stay a
    // term-0 follower and emit nothing.
    for _ in 0..200 {
        let out = net.node_mut(4).tick();
        assert!(out.is_empty(), "learner emitted {out:?}");
    }
    assert_eq!(net.node(4).term(), 0);
    assert_eq!(net.node(4).role(), Role::Follower);
}

#[test]
fn learner_vote_is_never_granted() {
    let mut net = Net::new();
    let out = net.node_mut(4).step(
        1,
        RaftMessage::RequestVote {
            term: 5,
            last_log_index: 0,
            last_log_term: 0,
        },
    );
    assert_eq!(out.len(), 1);
    match &out[0].msg {
        RaftMessage::RequestVoteResp { granted, .. } => assert!(!granted),
        other => panic!("unexpected response {other:?}"),
    }
}

#[test]
fn learner_does_not_count_toward_commit_quorum() {
    let mut net = Net::new();
    let leader = net.run_until_leader();
    // Cut the leader off from the other two voters; only the learner remains
    // reachable. Proposals must NOT commit.
    let voters: Vec<u64> = (1..=3).filter(|&v| v != leader).collect();
    let before = net.node(leader).commit_index();
    let (_, out) = net.node_mut(leader).propose_now(vec![1]).unwrap();
    // Deliver only to the learner.
    for o in out {
        if o.to == 4 {
            let replies = net.node_mut(4).step(leader, o.msg);
            for r in replies {
                let more = net.node_mut(leader).step(4, r.msg);
                // Discard further sends to the partitioned voters.
                drop(more);
            }
        }
    }
    // Learner acked, but the entry must remain uncommitted.
    assert_eq!(net.node(leader).commit_index(), before);
    let _ = voters;
}
