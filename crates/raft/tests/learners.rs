//! Tests for non-voting learners: they follow the log and apply entries but
//! never vote, never campaign and never count toward the quorum.

use beehive_raft::{
    ConfChange, ConfChangeKind, Config, KvCounter, MemStorage, ProposeError, RaftMessage, RaftNode,
    Role,
};

/// Builds a 3-voter + 1-learner group and hand-delivers messages, giving the
/// test full control over scheduling.
struct Net {
    nodes: Vec<RaftNode<KvCounter>>, // ids 1..=4; node 4 is the learner
    queue: Vec<(u64, u64, RaftMessage)>, // (from, to, msg)
}

impl Net {
    fn new() -> Self {
        let voters = vec![1u64, 2, 3];
        let mut nodes = Vec::new();
        for &id in &voters {
            let peers: Vec<u64> = voters.iter().copied().filter(|&p| p != id).collect();
            nodes.push(RaftNode::with_membership(
                id,
                peers,
                vec![4],
                false,
                Config {
                    rng_seed: id,
                    ..Config::default()
                },
                KvCounter::default(),
                Box::new(MemStorage::new()),
            ));
        }
        nodes.push(RaftNode::new_learner(
            4,
            voters,
            Config {
                rng_seed: 4,
                ..Config::default()
            },
            KvCounter::default(),
            Box::new(MemStorage::new()),
        ));
        Net {
            nodes,
            queue: Vec::new(),
        }
    }

    fn node(&self, id: u64) -> &RaftNode<KvCounter> {
        &self.nodes[(id - 1) as usize]
    }

    fn node_mut(&mut self, id: u64) -> &mut RaftNode<KvCounter> {
        &mut self.nodes[(id - 1) as usize]
    }

    fn tick_all(&mut self) {
        for id in 1..=4u64 {
            let out = self.node_mut(id).tick();
            for o in out {
                self.queue.push((id, o.to, o.msg));
            }
        }
        self.drain();
    }

    fn drain(&mut self) {
        while let Some((from, to, msg)) = self.queue.pop() {
            let out = self.node_mut(to).step(from, msg);
            for o in out {
                self.queue.push((to, o.to, o.msg));
            }
        }
    }

    /// Like `tick_all`, but the partitioned node `down` neither ticks nor
    /// exchanges messages.
    fn tick_all_except(&mut self, down: u64) {
        for id in (1..=4u64).filter(|&id| id != down) {
            let out = self.node_mut(id).tick();
            for o in out {
                self.queue.push((id, o.to, o.msg));
            }
        }
        self.drain_except(down);
    }

    /// Drains the queue, dropping anything to or from the partitioned node.
    fn drain_except(&mut self, down: u64) {
        while let Some((from, to, msg)) = self.queue.pop() {
            if from == down || to == down {
                continue;
            }
            let out = self.node_mut(to).step(from, msg);
            for o in out {
                self.queue.push((to, o.to, o.msg));
            }
        }
    }

    fn run_until_leader(&mut self) -> u64 {
        for _ in 0..500 {
            self.tick_all();
            if let Some(l) = (1..=3u64).find(|&id| self.node(id).is_leader()) {
                return l;
            }
        }
        panic!("no leader");
    }

    fn propose_conf(&mut self, leader: u64, cc: ConfChange) {
        let (_, out) = self.node_mut(leader).propose_conf_change(&cc).unwrap();
        for o in out {
            self.queue.push((leader, o.to, o.msg));
        }
    }
}

#[test]
fn learner_replicates_and_applies() {
    let mut net = Net::new();
    let leader = net.run_until_leader();
    let (_, out) = net.node_mut(leader).propose_now(vec![10]).unwrap();
    for o in out {
        net.queue.push((leader, o.to, o.msg));
    }
    net.drain();
    for _ in 0..20 {
        net.tick_all();
    }
    assert_eq!(
        net.node(4).state_machine().total,
        10,
        "learner did not apply"
    );
    assert!(net.node(4).is_learner());
    assert_eq!(net.node(4).role(), Role::Follower);
}

#[test]
fn learner_never_campaigns() {
    let mut net = Net::new();
    // Tick only the learner far past any election timeout: it must stay a
    // term-0 follower and emit nothing.
    for _ in 0..200 {
        let out = net.node_mut(4).tick();
        assert!(out.is_empty(), "learner emitted {out:?}");
    }
    assert_eq!(net.node(4).term(), 0);
    assert_eq!(net.node(4).role(), Role::Follower);
}

#[test]
fn learner_vote_is_never_granted() {
    let mut net = Net::new();
    let out = net.node_mut(4).step(
        1,
        RaftMessage::RequestVote {
            term: 5,
            last_log_index: 0,
            last_log_term: 0,
        },
    );
    assert_eq!(out.len(), 1);
    match &out[0].msg {
        RaftMessage::RequestVoteResp { granted, .. } => assert!(!granted),
        other => panic!("unexpected response {other:?}"),
    }
}

#[test]
fn learner_does_not_count_toward_commit_quorum() {
    let mut net = Net::new();
    let leader = net.run_until_leader();
    // Cut the leader off from the other two voters; only the learner remains
    // reachable. Proposals must NOT commit.
    let voters: Vec<u64> = (1..=3).filter(|&v| v != leader).collect();
    let before = net.node(leader).commit_index();
    let (_, out) = net.node_mut(leader).propose_now(vec![1]).unwrap();
    // Deliver only to the learner.
    for o in out {
        if o.to == 4 {
            let replies = net.node_mut(4).step(leader, o.msg);
            for r in replies {
                let more = net.node_mut(leader).step(4, r.msg);
                // Discard further sends to the partitioned voters.
                drop(more);
            }
        }
    }
    // Learner acked, but the entry must remain uncommitted.
    assert_eq!(net.node(leader).commit_index(), before);
    let _ = voters;
}

#[test]
fn learner_promotes_to_voter_under_partitioned_voter() {
    let mut net = Net::new();
    let leader = net.run_until_leader();
    // Partition one of the NON-leader voters: the promotion must still
    // commit through the remaining {leader, other-voter} quorum.
    let down = (1..=3u64).find(|&v| v != leader).unwrap();
    net.propose_conf(
        leader,
        ConfChange {
            node: 4,
            addr: String::new(),
            kind: ConfChangeKind::PromoteVoter,
        },
    );
    for _ in 0..30 {
        net.tick_all_except(down);
    }
    assert!(!net.node(4).is_learner(), "learner was not promoted");
    assert_eq!(
        net.node(leader).voters(),
        vec![1, 2, 3, 4],
        "leader's voter set must now include the promoted node"
    );
    // The promoted voter counts toward the quorum: with `down` still
    // partitioned, {leader, other voter, node 4} is 3 of 4 — proposals
    // commit and node 4 applies them.
    let before = net.node(4).state_machine().total;
    let (_, out) = net.node_mut(leader).propose_now(vec![7]).unwrap();
    for o in out {
        net.queue.push((leader, o.to, o.msg));
    }
    net.drain_except(down);
    for _ in 0..30 {
        net.tick_all_except(down);
    }
    assert_eq!(net.node(4).state_machine().total, before + 7);
}

#[test]
fn only_one_conf_change_in_flight() {
    let mut net = Net::new();
    let leader = net.run_until_leader();
    let cc = ConfChange {
        node: 4,
        addr: String::new(),
        kind: ConfChangeKind::PromoteVoter,
    };
    // Propose without delivering: the change is appended but unapplied.
    net.node_mut(leader).propose_conf_change(&cc).unwrap();
    let second = net.node_mut(leader).propose_conf_change(&ConfChange {
        node: 5,
        addr: String::new(),
        kind: ConfChangeKind::AddLearner,
    });
    assert!(matches!(second, Err(ProposeError::ConfChangeInFlight)));
}

#[test]
fn leader_drains_itself_with_handoff() {
    let mut net = Net::new();
    let old = net.run_until_leader();
    let target = (1..=3u64).find(|&v| v != old).unwrap();

    // 1. Leadership hand-off: the draining leader tells a caught-up voter
    // to campaign immediately.
    let out = net.node_mut(old).transfer_leadership(target);
    assert!(!out.is_empty(), "transfer produced no messages");
    for o in out {
        net.queue.push((old, o.to, o.msg));
    }
    net.drain();
    for _ in 0..50 {
        if net.node(target).is_leader() {
            break;
        }
        net.tick_all();
    }
    assert!(net.node(target).is_leader(), "transfer target did not win");
    assert!(!net.node(old).is_leader(), "old leader did not step down");

    // 2. Voter → learner: the new leader demotes the drained node, which
    // observes its own demotion (learners keep receiving the log).
    net.propose_conf(
        target,
        ConfChange {
            node: old,
            addr: String::new(),
            kind: ConfChangeKind::DemoteLearner,
        },
    );
    for _ in 0..30 {
        net.tick_all();
    }
    assert!(net.node(old).is_learner(), "drained voter was not demoted");
    assert_eq!(net.node(target).voters().len(), 2);
    assert!(net.node(target).learners().contains(&old));

    // 3. Learner → removed: the surviving members drop it from the
    // configuration entirely and stop replicating to it.
    net.propose_conf(
        target,
        ConfChange {
            node: old,
            addr: String::new(),
            kind: ConfChangeKind::RemoveNode,
        },
    );
    for _ in 0..30 {
        net.tick_all();
    }
    assert!(
        !net.node(target).learners().contains(&old),
        "removed node still a learner"
    );
    assert!(!net.node(target).voters().contains(&old));
    // The survivors (2 voters + learner 4) still commit proposals.
    let (_, out) = net.node_mut(target).propose_now(vec![3]).unwrap();
    for o in out {
        net.queue.push((target, o.to, o.msg));
    }
    net.drain();
    for _ in 0..30 {
        net.tick_all();
    }
    assert_eq!(net.node(4).state_machine().total, 3);
}
