//! Pre-vote tests: a rejoining partitioned node must not inflate terms and
//! depose a healthy leader; elections still complete when they should.

use beehive_raft::harness::Cluster;
use beehive_raft::{Config, KvCounter};

#[test]
fn partitioned_node_does_not_depose_leader_on_rejoin() {
    let mut c = Cluster::new(3, Config::default(), 21, KvCounter::default);
    let leader = c.run_until_leader(2_000).unwrap();
    let victim = c.nodes().map(|n| n.id()).find(|&id| id != leader).unwrap();
    c.propose(leader, vec![1]).unwrap();
    c.run_ticks(50);
    let stable_term = c.node(leader).unwrap().term();

    // Isolate the victim long enough for MANY election timeouts: with
    // pre-vote its term must not advance (its probes go unanswered).
    c.isolate(victim);
    c.run_ticks(500);
    assert_eq!(
        c.node(victim).unwrap().term(),
        stable_term,
        "pre-vote must prevent term inflation while partitioned"
    );

    // Rejoin: the healthy leader must remain leader at the same term.
    c.heal();
    c.run_ticks(200);
    assert_eq!(
        c.node(leader).unwrap().term(),
        stable_term,
        "leader not deposed"
    );
    assert!(c.node(leader).unwrap().is_leader());
    c.assert_at_most_one_leader_per_term();
}

#[test]
fn without_pre_vote_terms_inflate() {
    // Control experiment: the classic disruption pre-vote exists to prevent.
    let cfg = Config {
        pre_vote: false,
        ..Config::default()
    };
    let mut c = Cluster::new(3, cfg, 21, KvCounter::default);
    let leader = c.run_until_leader(2_000).unwrap();
    let victim = c.nodes().map(|n| n.id()).find(|&id| id != leader).unwrap();
    let stable_term = c.node(leader).unwrap().term();

    c.isolate(victim);
    c.run_ticks(500);
    assert!(
        c.node(victim).unwrap().term() > stable_term + 5,
        "without pre-vote the partitioned node churns terms"
    );
}

#[test]
fn elections_still_work_with_pre_vote() {
    let mut c = Cluster::new(5, Config::default(), 22, KvCounter::default);
    let leader = c.run_until_leader(2_000).unwrap();
    for i in 0..5u8 {
        c.propose(leader, vec![i]).unwrap();
    }
    c.run_ticks(100);
    // Kill the leader: a new one must emerge through pre-vote + election.
    c.crash(leader);
    let new_leader = c
        .run_until_leader(3_000)
        .expect("re-election with pre-vote");
    assert_ne!(new_leader, leader);
    c.propose(new_leader, vec![9]).unwrap();
    assert!(c.run_until(500, |c| c.nodes().all(|n| n.state_machine().applied == 6)));
    c.assert_committed_logs_agree();
}

#[test]
fn stale_log_cannot_win_pre_vote() {
    let mut c = Cluster::new(3, Config::default(), 23, KvCounter::default);
    let leader = c.run_until_leader(2_000).unwrap();
    let victim = c.nodes().map(|n| n.id()).find(|&id| id != leader).unwrap();
    c.isolate(victim);
    // Commit entries the victim misses.
    for i in 0..4u8 {
        c.propose(leader, vec![i]).unwrap();
        c.run_ticks(20);
    }
    c.heal();
    c.run_ticks(300);
    // The victim caught up instead of winning an election with a stale log.
    assert!(c.node(victim).unwrap().state_machine().applied >= 4);
    c.assert_committed_logs_agree();
    c.assert_at_most_one_leader_per_term();
}
