//! Property tests for Raft safety under randomized schedules.
//!
//! Each case builds a cluster with a random size/seed, injects a random fault
//! script (drops, partitions, crashes, restarts) interleaved with proposals,
//! and asserts the two core safety properties afterwards:
//!
//! 1. **Election safety** — at most one leader per term;
//! 2. **State machine safety** — committed prefixes agree on all nodes.

use beehive_raft::harness::Cluster;
use beehive_raft::{Config, KvCounter};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Ticks(u16),
    Propose(u8),
    Drop(u8), // set drop rate to n/200 (max 50%)
    Partition(u8, u8),
    Heal,
    Crash(u8),
    Restart(u8),
}

fn arb_op(n: u8) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (1u16..120).prop_map(Op::Ticks),
        4 => any::<u8>().prop_map(Op::Propose),
        1 => (0u8..80).prop_map(Op::Drop),
        1 => (1..=n, 1..=n).prop_map(|(a, b)| Op::Partition(a, b)),
        1 => Just(Op::Heal),
        1 => (1..=n).prop_map(Op::Crash),
        1 => (1..=n).prop_map(Op::Restart),
    ]
}

fn run_script(n: usize, seed: u64, pre_vote: bool, ops: Vec<Op>) -> Cluster<KvCounter> {
    let cfg = Config {
        pre_vote,
        ..Config::default()
    };
    let mut c = Cluster::new(n, cfg, seed, KvCounter::default);
    let mut crashed: Vec<u64> = Vec::new();
    for op in ops {
        match op {
            Op::Ticks(t) => c.run_ticks(t as u64),
            Op::Propose(v) => {
                if let Some(l) = c.leader() {
                    let _ = c.propose(l, vec![v]);
                }
            }
            Op::Drop(r) => c.faults.drop_rate = r as f64 / 200.0,
            Op::Partition(a, b) => {
                if a != b {
                    c.partition(a as u64, b as u64);
                }
            }
            Op::Heal => c.heal(),
            Op::Crash(id) => {
                let id = id as u64;
                // Keep a majority alive so liveness checks stay meaningful.
                if !crashed.contains(&id) && crashed.len() + 1 < n.div_ceil(2) {
                    c.crash(id);
                    crashed.push(id);
                }
            }
            Op::Restart(id) => {
                let id = id as u64;
                if let Some(pos) = crashed.iter().position(|&x| x == id) {
                    crashed.remove(pos);
                    c.restart(id);
                }
            }
        }
        // Safety must hold at every step, not just at the end.
        c.assert_at_most_one_leader_per_term();
    }
    // Recover: restart everyone, heal, stop drops, and give time to converge.
    for id in crashed {
        c.restart(id);
    }
    c.heal();
    c.faults.drop_rate = 0.0;
    c
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn safety_holds_under_random_fault_scripts(
        n in 3usize..=5,
        seed in any::<u64>(),
        pre_vote in any::<bool>(),
        ops in proptest::collection::vec(arb_op(5), 1..40),
    ) {
        let ops: Vec<Op> = ops
            .into_iter()
            .map(|op| match op {
                // Clamp node ids to the actual cluster size.
                Op::Partition(a, b) => Op::Partition(a.min(n as u8), b.min(n as u8)),
                Op::Crash(id) => Op::Crash(id.min(n as u8)),
                Op::Restart(id) => Op::Restart(id.min(n as u8)),
                other => other,
            })
            .collect();
        let mut c = run_script(n, seed, pre_vote, ops);
        c.run_ticks(3000);
        c.assert_committed_logs_agree();
        c.assert_at_most_one_leader_per_term();

        // After recovery the cluster must be able to make progress.
        let leader = c.run_until_leader(5000).expect("liveness after heal");
        let before = c.node(leader).unwrap().state_machine().applied;
        c.propose(leader, vec![1]).unwrap();
        prop_assert!(c.run_until(2000, |c| {
            c.nodes().all(|nd| nd.state_machine().applied > before)
        }), "cluster failed to commit after recovery");

        // And all applied state machines agree.
        let totals: Vec<u64> = c.nodes().map(|nd| nd.state_machine().total).collect();
        prop_assert!(totals.windows(2).all(|w| w[0] == w[1]), "divergent totals {:?}", totals);
    }

    #[test]
    fn logs_agree_under_pure_drop_noise(
        seed in any::<u64>(),
        drop_pct in 0u8..45,
        proposals in proptest::collection::vec(any::<u8>(), 1..12),
    ) {
        let mut c = Cluster::new(3, Config::default(), seed, KvCounter::default);
        c.faults.drop_rate = drop_pct as f64 / 100.0;
        for v in &proposals {
            if let Some(l) = c.leader() {
                let _ = c.propose(l, vec![*v]);
            }
            c.run_ticks(40);
        }
        c.faults.drop_rate = 0.0;
        c.run_ticks(2000);
        c.assert_committed_logs_agree();
        let applied: Vec<u64> = c.nodes().map(|n| n.state_machine().applied).collect();
        prop_assert!(applied.windows(2).all(|w| w[0] == w[1]), "applied counts diverge {:?}", applied);
    }
}
