//! Integration tests driving whole Raft clusters in virtual time, including
//! fault injection: partitions, crashes, restarts, message drops.

use beehive_raft::harness::Cluster;
use beehive_raft::{Config, KvCounter, ProposeError, Role};

fn cluster(n: usize, seed: u64) -> Cluster<KvCounter> {
    Cluster::new(n, Config::default(), seed, KvCounter::default)
}

#[test]
fn three_nodes_elect_exactly_one_leader() {
    let mut c = cluster(3, 1);
    let leader = c.run_until_leader(500).unwrap();
    c.assert_at_most_one_leader_per_term();
    assert!(c.node(leader).unwrap().is_leader());
    // Let heartbeats propagate so followers learn the leader.
    c.run_ticks(20);
    // The two others are followers of the same term.
    for n in c.nodes() {
        if n.id() != leader {
            assert_eq!(n.role(), Role::Follower);
            assert_eq!(n.leader_hint(), Some(leader));
        }
    }
}

#[test]
fn five_nodes_replicate_proposals_to_all() {
    let mut c = cluster(5, 2);
    let leader = c.run_until_leader(500).unwrap();
    for i in 0..10u8 {
        c.propose(leader, vec![i]).unwrap();
    }
    assert!(c.run_until(500, |c| c.nodes().all(|n| n.state_machine().applied == 10)));
    let expect: u64 = (0..10u64).sum();
    for n in c.nodes() {
        assert_eq!(n.state_machine().total, expect, "node {} diverged", n.id());
    }
    c.assert_committed_logs_agree();
}

#[test]
fn proposals_on_followers_are_rejected_with_hint() {
    let mut c = cluster(3, 3);
    let leader = c.run_until_leader(500).unwrap();
    c.run_ticks(20); // heartbeats teach followers who leads
    let follower = c.nodes().map(|n| n.id()).find(|&id| id != leader).unwrap();
    let err = c.propose(follower, vec![1]).unwrap_err();
    assert_eq!(err, ProposeError::NotLeader(Some(leader)));
}

#[test]
fn leader_crash_triggers_reelection_and_no_committed_data_is_lost() {
    let mut c = cluster(5, 4);
    let leader = c.run_until_leader(500).unwrap();
    for i in 1..=5u8 {
        c.propose(leader, vec![i]).unwrap();
    }
    assert!(c.run_until(500, |c| c.nodes().all(|n| n.state_machine().applied == 5)));

    c.crash(leader);
    let new_leader = c.run_until_leader(1000).unwrap();
    assert_ne!(new_leader, leader);

    c.propose(new_leader, vec![100]).unwrap();
    assert!(c.run_until(500, |c| c.nodes().all(|n| n.state_machine().applied == 6)));
    for n in c.nodes() {
        assert_eq!(n.state_machine().total, 15 + 100);
    }
}

#[test]
fn crashed_node_rejoins_and_catches_up() {
    let mut c = cluster(3, 5);
    let leader = c.run_until_leader(500).unwrap();
    let victim = c.nodes().map(|n| n.id()).find(|&id| id != leader).unwrap();
    c.crash(victim);

    for i in 1..=4u8 {
        c.propose(leader, vec![i]).unwrap();
    }
    c.run_ticks(100);

    c.restart(victim);
    assert!(
        c.run_until(1000, |c| c.node(victim).unwrap().state_machine().applied
            == 4)
    );
    assert_eq!(c.node(victim).unwrap().state_machine().total, 10);
    c.assert_committed_logs_agree();
}

#[test]
fn minority_partition_cannot_commit() {
    let mut c = cluster(5, 6);
    let leader = c.run_until_leader(500).unwrap();
    // Cut the leader plus one follower off from the rest.
    let buddy = c.nodes().map(|n| n.id()).find(|&id| id != leader).unwrap();
    for n in c.nodes().map(|n| n.id()).collect::<Vec<_>>() {
        if n != leader && n != buddy {
            c.partition(leader, n);
            c.partition(buddy, n);
        }
    }
    // The old leader may still accept proposals but must not commit them.
    let before = c.node(leader).unwrap().commit_index();
    let _ = c.propose(leader, vec![9]);
    c.run_ticks(200);
    assert_eq!(
        c.node(leader).unwrap().commit_index(),
        before,
        "minority leader committed!"
    );

    // The majority side elects its own leader and can commit.
    let majority_leader = c.run_until_leader(1000);
    // (run_until_leader needs a unique max-term leader; the stale one will
    // have a lower term.)
    let ml = majority_leader.unwrap();
    assert_ne!(ml, leader);
    c.propose(ml, vec![7]).unwrap();
    assert!(c.run_until(500, |c| c.node(ml).unwrap().state_machine().applied >= 1));

    // Heal: the minority leader steps down and converges.
    c.heal();
    assert!(c.run_until(1000, |c| c.nodes().all(
        |n| n.state_machine().applied == c.node(ml).unwrap().state_machine().applied
    )));
    c.assert_committed_logs_agree();
    c.assert_at_most_one_leader_per_term();
    // The uncommitted minority proposal must have been discarded everywhere.
    for n in c.nodes() {
        assert_eq!(n.state_machine().total, 7);
    }
}

#[test]
fn cluster_survives_heavy_message_drops() {
    let mut c = cluster(3, 7);
    c.faults.drop_rate = 0.2;
    let leader = c.run_until_leader(5000).expect("leader despite 20% drops");
    for i in 1..=10u8 {
        // The leader may be deposed under drops; re-find it as needed.
        let l = c.leader().unwrap_or(leader);
        let _ = c.propose(l, vec![i]);
        c.run_ticks(50);
    }
    c.faults.drop_rate = 0.0;
    c.run_ticks(1000);
    c.assert_committed_logs_agree();
    // All live nodes agree on totals.
    let totals: Vec<u64> = c.nodes().map(|n| n.state_machine().total).collect();
    assert!(
        totals.windows(2).all(|w| w[0] == w[1]),
        "divergent totals {totals:?}"
    );
}

#[test]
fn slow_follower_catches_up_via_snapshot() {
    let cfg = Config {
        snapshot_threshold: 8,
        ..Config::default()
    };
    let mut c = Cluster::new(3, cfg, 8, KvCounter::default);
    let leader = c.run_until_leader(500).unwrap();
    let slow = c.nodes().map(|n| n.id()).find(|&id| id != leader).unwrap();
    c.isolate(slow);

    // Commit enough to trigger compaction on the leader.
    for i in 0..32u8 {
        c.propose(leader, vec![i]).unwrap();
        c.run_ticks(5);
    }
    c.run_ticks(100);
    assert!(
        c.node(leader).unwrap().log().snapshot_index() > 0,
        "leader should have compacted its log"
    );

    c.heal();
    assert!(
        c.run_until(2000, |c| c.node(slow).unwrap().state_machine().applied
            == 32),
        "slow follower failed to catch up via InstallSnapshot"
    );
    let expect: u64 = (0..32u64).sum();
    assert_eq!(c.node(slow).unwrap().state_machine().total, expect);
}

#[test]
fn single_node_cluster_commits_immediately() {
    let mut c = cluster(1, 9);
    let leader = c.run_until_leader(100).unwrap();
    c.propose(leader, vec![42]).unwrap();
    // No peers: commit + apply happen synchronously inside propose.
    assert_eq!(c.node(leader).unwrap().state_machine().total, 42);
}

#[test]
fn proposal_tokens_come_back_on_apply() {
    let mut c = cluster(3, 10);
    let leader = c.run_until_leader(500).unwrap();
    let t1 = c.propose(leader, vec![1]).unwrap();
    let t2 = c.propose(leader, vec![2]).unwrap();
    assert_ne!(t1, t2);
    c.run_ticks(200);
    let applied = c.node_mut(leader).unwrap().take_applied();
    let tokens: Vec<u64> = applied.iter().filter_map(|a| a.token).collect();
    assert_eq!(tokens, vec![t1, t2]);
    // Followers see the entries but without tokens.
    let follower = c.nodes().map(|n| n.id()).find(|&id| id != leader).unwrap();
    let fapplied = c.node_mut(follower).unwrap().take_applied();
    assert!(fapplied.iter().all(|a| a.token.is_none()));
    assert_eq!(fapplied.len(), 2);
}

#[test]
fn terms_are_monotonic_and_logs_match_under_churn() {
    let mut c = cluster(5, 11);
    let mut last_terms = [0u64; 6];
    for round in 0..6 {
        if let Ok(leader) = c.run_until_leader(2000) {
            let _ = c.propose(leader, vec![round as u8]);
            c.run_ticks(50);
            if round % 2 == 0 {
                c.crash(leader);
                c.run_ticks(50);
                c.restart(leader);
            }
        }
        for n in c.nodes() {
            let id = n.id() as usize;
            assert!(n.term() >= last_terms[id], "term went backwards on {id}");
            last_terms[id] = n.term();
        }
        c.assert_at_most_one_leader_per_term();
        c.assert_committed_logs_agree();
    }
}

#[test]
fn delayed_messages_do_not_break_safety() {
    let mut c = cluster(3, 12);
    c.faults.delay = 2;
    c.faults.jitter = 3;
    let leader = c.run_until_leader(5000).unwrap();
    for i in 1..=8u8 {
        let l = c.leader().unwrap_or(leader);
        let _ = c.propose(l, vec![i]);
        c.run_ticks(30);
    }
    c.run_ticks(500);
    c.assert_committed_logs_agree();
    c.assert_at_most_one_leader_per_term();
}
