//! Snapshot shipping end to end: once the log is compacted past genesis,
//! the only way a fresh learner or a lagging restarted voter can catch up is
//! `InstallSnapshot` — AppendEntries cannot reach below the compaction
//! horizon. These tests prove catch-up is O(state), not O(history), and that
//! a snapshot-restored state machine is byte-equivalent to full log replay.

use beehive_raft::{
    ConfChange, ConfChangeKind, Config, KvCounter, RaftMessage, RaftNode, SharedMemStorage,
};

/// Compact aggressively so a handful of proposals moves the horizon.
const SNAPSHOT_THRESHOLD: u64 = 4;

fn config(id: u64) -> Config {
    Config {
        rng_seed: id,
        snapshot_threshold: SNAPSHOT_THRESHOLD,
        ..Config::default()
    }
}

/// Hand-delivers messages between nodes, keyed by node id (nodes can be
/// added mid-test, unlike a dense index).
struct Net {
    nodes: Vec<(u64, RaftNode<KvCounter>)>,
    queue: Vec<(u64, u64, RaftMessage)>,
    storages: Vec<(u64, SharedMemStorage)>,
}

impl Net {
    fn new(voters: &[u64]) -> Self {
        let mut net = Net {
            nodes: Vec::new(),
            queue: Vec::new(),
            storages: Vec::new(),
        };
        for &id in voters {
            let peers: Vec<u64> = voters.iter().copied().filter(|&p| p != id).collect();
            let storage = SharedMemStorage::new();
            net.storages.push((id, storage.handle()));
            net.nodes.push((
                id,
                RaftNode::new(
                    id,
                    peers,
                    config(id),
                    KvCounter::default(),
                    Box::new(storage),
                ),
            ));
        }
        net
    }

    fn node(&self, id: u64) -> &RaftNode<KvCounter> {
        &self.nodes.iter().find(|(n, _)| *n == id).unwrap().1
    }

    fn node_mut(&mut self, id: u64) -> &mut RaftNode<KvCounter> {
        &mut self.nodes.iter_mut().find(|(n, _)| *n == id).unwrap().1
    }

    fn storage(&self, id: u64) -> SharedMemStorage {
        self.storages
            .iter()
            .find(|(n, _)| *n == id)
            .unwrap()
            .1
            .handle()
    }

    fn ids(&self) -> Vec<u64> {
        self.nodes.iter().map(|(id, _)| *id).collect()
    }

    fn tick_all(&mut self) {
        for id in self.ids() {
            let out = self.node_mut(id).tick();
            for o in out {
                self.queue.push((id, o.to, o.msg));
            }
        }
        self.drain();
    }

    fn drain(&mut self) {
        while let Some((from, to, msg)) = self.queue.pop() {
            if !self.nodes.iter().any(|(id, _)| *id == to) {
                continue; // crashed or not-yet-joined node
            }
            let out = self.node_mut(to).step(from, msg);
            for o in out {
                self.queue.push((to, o.to, o.msg));
            }
        }
    }

    fn run_until_leader(&mut self) -> u64 {
        for _ in 0..500 {
            self.tick_all();
            if let Some(l) = self.ids().into_iter().find(|&id| self.node(id).is_leader()) {
                return l;
            }
        }
        panic!("no leader");
    }

    fn propose(&mut self, leader: u64, data: Vec<u8>) {
        let (_, out) = self.node_mut(leader).propose_now(data).unwrap();
        for o in out {
            self.queue.push((leader, o.to, o.msg));
        }
        self.drain();
    }

    fn propose_conf(&mut self, leader: u64, cc: ConfChange) {
        let (_, out) = self.node_mut(leader).propose_conf_change(&cc).unwrap();
        for o in out {
            self.queue.push((leader, o.to, o.msg));
        }
        self.drain();
    }

    /// Removes the node from the net (it stops ticking; queued messages to
    /// it are dropped). Its durable state lives on in `self.storages`.
    fn crash(&mut self, id: u64) {
        self.nodes.retain(|(n, _)| *n != id);
    }
}

/// Drives enough proposals through the leader to compact every voter's log
/// past genesis, and returns the expected state-machine total.
fn compact_past_genesis(net: &mut Net, leader: u64) -> u64 {
    let mut total = 0u64;
    for i in 0..(3 * SNAPSHOT_THRESHOLD) {
        let b = (i % 251 + 1) as u8;
        total += b as u64;
        net.propose(leader, vec![b]);
    }
    for _ in 0..10 {
        net.tick_all();
    }
    for id in net.ids() {
        assert!(
            net.node(id).snapshot_index() > 0,
            "node {id} never compacted"
        );
        assert!(net.node(id).snapshots_taken() > 0);
    }
    total
}

#[test]
fn learner_joining_after_compaction_catches_up_via_snapshot_alone() {
    let voters = vec![1u64, 2, 3];
    let mut net = Net::new(&voters);
    let leader = net.run_until_leader();
    let total = compact_past_genesis(&mut net, leader);
    let horizon = net.node(leader).snapshot_index();
    assert!(horizon > 0, "leader log must be compacted past genesis");

    // Join node 4 as a learner with a completely empty log.
    net.propose_conf(
        leader,
        ConfChange {
            node: 4,
            addr: String::new(),
            kind: ConfChangeKind::AddLearner,
        },
    );
    let storage = SharedMemStorage::new();
    net.storages.push((4, storage.handle()));
    net.nodes.push((
        4,
        RaftNode::new_learner(
            4,
            voters.clone(),
            config(4),
            KvCounter::default(),
            Box::new(storage),
        ),
    ));
    for _ in 0..50 {
        net.tick_all();
    }

    let learner = net.node(4);
    assert_eq!(
        learner.state_machine().total,
        total,
        "learner did not reach the replicated state"
    );
    assert!(
        learner.snapshots_installed() >= 1,
        "learner must have been shipped a snapshot"
    );
    // The learner's log starts at (or beyond) the leader's compaction
    // horizon: it never saw the compacted prefix, so the snapshot was the
    // only possible source of the early state.
    assert!(
        learner.snapshot_index() >= horizon,
        "learner log begins at {} but the leader compacted to {horizon}",
        learner.snapshot_index()
    );
    assert_eq!(
        learner.state_machine().applied,
        net.node(leader).state_machine().applied,
        "snapshot-restored apply count diverges from full-replay replicas"
    );
}

#[test]
fn restarted_voter_behind_compaction_horizon_catches_up_via_snapshot() {
    let voters = vec![1u64, 2, 3];
    let mut net = Net::new(&voters);
    let leader = net.run_until_leader();
    net.propose(leader, vec![10]);

    // Crash a follower, then push the surviving quorum far past the
    // compaction horizon so AppendEntries can no longer reach it.
    let down = voters.iter().copied().find(|&v| v != leader).unwrap();
    net.crash(down);
    let mut expected = net.node(leader).state_machine().total;
    for i in 0..(3 * SNAPSHOT_THRESHOLD) {
        let b = (i % 97 + 1) as u8;
        expected += b as u64;
        net.propose(leader, vec![b]);
    }
    for _ in 0..10 {
        net.tick_all();
    }
    assert!(net.node(leader).snapshot_index() > 0);

    // Restart the crashed voter from its own durable state (which predates
    // the compaction) — the leader must ship it a snapshot.
    let peers: Vec<u64> = voters.iter().copied().filter(|&p| p != down).collect();
    let restored = RaftNode::new(
        down,
        peers,
        config(down),
        KvCounter::default(),
        Box::new(net.storage(down)),
    );
    let installed_before = restored.snapshots_installed();
    net.nodes.push((down, restored));
    for _ in 0..50 {
        net.tick_all();
    }

    assert_eq!(
        net.node(down).state_machine().total,
        expected,
        "restarted voter did not converge"
    );
    assert!(
        net.node(down).snapshots_installed() > installed_before,
        "restarted voter should have caught up via InstallSnapshot"
    );
    // All three replicas agree — snapshot-restored and full-replay alike.
    for id in net.ids() {
        assert_eq!(net.node(id).state_machine().total, expected);
    }
}

#[test]
fn snapshot_restored_node_equals_full_replay_node() {
    // Node A applies every entry from the log; node B is restored from a
    // snapshot. Their state machines (and apply counters, which ride the
    // snapshot) must be identical — the invariant the chaos harness checks
    // with registry digests.
    let voters = vec![1u64, 2, 3];
    let mut net = Net::new(&voters);
    let leader = net.run_until_leader();
    let total = compact_past_genesis(&mut net, leader);

    net.propose_conf(
        leader,
        ConfChange {
            node: 4,
            addr: String::new(),
            kind: ConfChangeKind::AddLearner,
        },
    );
    let storage = SharedMemStorage::new();
    net.storages.push((4, storage.handle()));
    net.nodes.push((
        4,
        RaftNode::new_learner(
            4,
            voters.clone(),
            config(4),
            KvCounter::default(),
            Box::new(storage),
        ),
    ));
    for _ in 0..50 {
        net.tick_all();
    }

    let replayed = net.node(leader).state_machine();
    let restored = net.node(4).state_machine();
    assert_eq!(restored.total, replayed.total);
    assert_eq!(restored.applied, replayed.applied);
    assert_eq!(restored.total, total);
    assert!(net.node(4).snapshots_installed() >= 1);
}
