//! Deterministic chaos harness: seeded fault schedules driven against a
//! [`SimCluster`] in virtual time, with the cluster audited by the
//! [`crate::invariants`] checkers after every tick.
//!
//! One `u64` seed derives everything: the fault timeline
//! ([`FaultSchedule::generate`]) — partitions and heals, drop / duplicate /
//! reorder / delay windows on the fabric, hive crashes and restarts through
//! the durable-registry path, disk-fault restart storms that tear the
//! outbox journal's tail before every revival, injected handler faults,
//! forced migrations — and the interleaved workload. Every run folds its per-tick audits into a
//! [`Digest`]; two runs of the same seed must produce byte-identical
//! digests, which is both the determinism proof and the property CI's
//! `chaos-smoke` job asserts.
//!
//! On a violation, [`minimize`] greedily drops schedule windows while the
//! failure persists, leaving a minimal replayable repro
//! (`beehive-chaos --seed N`).

use std::collections::BTreeMap;

use beehive_core::prelude::*;
use beehive_net::FabricFaults;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::cluster::{ClusterConfig, SimCluster};
use crate::invariants::{check_all, gather, CrashLedger, Digest, Violation};

/// The chaos workload message: adds `amount` to one key's pair of
/// dictionary entries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosOp {
    /// Workload key (maps to cell `("left", key)`).
    pub key: String,
    /// Amount added to both dictionaries.
    pub amount: u64,
}
beehive_core::impl_message!(ChaosOp);

/// Name of the chaos workload application.
pub const CHAOS_APP: &str = "chaos";

/// The chaos workload app: every [`ChaosOp`] increments `left[key]` **and**
/// `right[key]` inside one transaction. The paired write is what the
/// atomicity checker audits (the two values must never diverge — not even
/// across a crash-restart), and writing `right` outside the mapped cell
/// exercises the registry's dynamic cell-assignment path.
pub fn chaos_app() -> App {
    App::builder(CHAOS_APP)
        .handle::<ChaosOp>(
            |m| Mapped::cell("left", &m.key),
            |m, ctx| {
                let l: u64 = ctx
                    .get("left", &m.key)
                    .map_err(|e| e.to_string())?
                    .unwrap_or(0);
                ctx.put("left", m.key.clone(), &(l + m.amount))
                    .map_err(|e| e.to_string())?;
                let r: u64 = ctx
                    .get("right", &m.key)
                    .map_err(|e| e.to_string())?
                    .unwrap_or(0);
                ctx.put("right", m.key.clone(), &(r + m.amount))
                    .map_err(|e| e.to_string())?;
                Ok(())
            },
        )
        .build()
}

/// One kind of injected fault.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Sever the link between two hives for the window, then heal.
    Partition {
        /// One side of the cut.
        a: u32,
        /// The other side.
        b: u32,
    },
    /// Drop frames with probability `permille`/1000 during the window.
    Drop {
        /// Drop probability in permille.
        permille: u32,
    },
    /// Deliver frames twice with probability `permille`/1000.
    Duplicate {
        /// Duplication probability in permille.
        permille: u32,
    },
    /// Reorder frames with probability `permille`/1000.
    Reorder {
        /// Reorder probability in permille.
        permille: u32,
    },
    /// Add fixed latency plus jitter during the window.
    Delay {
        /// Latency in ms (jitter is half of it).
        ms: u64,
    },
    /// Crash the hive at the window start, restart it at the window end
    /// (through the durable-registry restart path).
    Crash {
        /// The hive to kill.
        hive: u32,
    },
    /// A restart storm with a sick disk: bounce the hive down and up on
    /// alternating ticks of the window, and before every restart append a
    /// half-written record to its durable outbox journal — exactly the torn
    /// tail a crash mid-append leaves behind. Every revival must truncate
    /// the torn tail, replay the journal, and rejoin the registry via the
    /// snapshot/restore path without diverging from its peers.
    DiskFault {
        /// The hive whose disk misbehaves.
        hive: u32,
    },
    /// Arm an injected handler fault on every live hive: the next `times`
    /// workload deliveries fail as if the handler returned `Err`.
    HandlerFault {
        /// Failure budget (kept ≤ the redelivery budget so nothing
        /// dead-letters on a lossless schedule).
        times: u32,
    },
    /// Force-migrate one workload bee to the next live hive.
    ForceMigration,
    /// Elastic-membership churn: a brand-new hive joins the cluster at the
    /// window start (learner → caught up → voter) and is drained back out
    /// once the window elapses and the join completed — evacuation,
    /// outbox flush, demotion, removal. At most one churn is in flight at a
    /// time; extra windows while one is active do nothing.
    MembershipChurn,
    /// TEST-ONLY deliberate bug: force a second hive to claim a cell it
    /// does not own, bypassing the registry. Exists to prove the ownership
    /// checker catches real violations.
    OwnershipBug,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Partition { a, b } => write!(f, "partition({a}<->{b})"),
            FaultKind::Drop { permille } => write!(f, "drop({permille}‰)"),
            FaultKind::Duplicate { permille } => write!(f, "duplicate({permille}‰)"),
            FaultKind::Reorder { permille } => write!(f, "reorder({permille}‰)"),
            FaultKind::Delay { ms } => write!(f, "delay({ms}ms)"),
            FaultKind::Crash { hive } => write!(f, "crash(hive {hive})"),
            FaultKind::DiskFault { hive } => write!(f, "disk-fault(hive {hive})"),
            FaultKind::HandlerFault { times } => write!(f, "handler-fault(×{times})"),
            FaultKind::ForceMigration => write!(f, "force-migration"),
            FaultKind::MembershipChurn => write!(f, "membership-churn"),
            FaultKind::OwnershipBug => write!(f, "ownership-bug"),
        }
    }
}

/// One fault active during ticks `[at, at + for_ticks)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// First tick the fault is active.
    pub at: u64,
    /// Window length in ticks (instantaneous faults fire at `at` only).
    pub for_ticks: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A reproducible fault timeline, fully derived from `seed`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// The seed everything was derived from (also reseeds the fabric RNG
    /// and the workload generator).
    pub seed: u64,
    /// Number of active workload ticks (a quiet drain phase follows).
    pub ticks: u64,
    /// The fault windows, sorted by start tick.
    pub windows: Vec<FaultWindow>,
}

impl std::fmt::Display for FaultSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "schedule seed={} ticks={} ({} windows):",
            self.seed,
            self.ticks,
            self.windows.len()
        )?;
        for w in &self.windows {
            writeln!(f, "  tick {:>3} +{:<2} {}", w.at, w.for_ticks, w.kind)?;
        }
        write!(f, "replay: beehive-chaos --seed {}", self.seed)
    }
}

impl FaultSchedule {
    /// Derives a schedule from one seed. The same `(seed, cfg)` pair always
    /// yields the same schedule.
    pub fn generate(seed: u64, cfg: &ChaosConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA24B_AED4_963E_E407);
        let n = rng.gen_range(cfg.min_windows..=cfg.max_windows.max(cfg.min_windows));
        let last_start = cfg.ticks.saturating_sub(1).max(4);
        let mut windows = Vec::new();
        let mut crash_busy: Vec<(u64, u64)> = Vec::new();
        for _ in 0..n {
            let at = rng.gen_range(3..last_start);
            let for_ticks = rng.gen_range(1..=8u64);
            // Candidate kinds, gated by the config. The draw happens
            // unconditionally so schedules with different gates still share
            // the RNG stream prefix.
            let kind = match rng.gen_range(0..10u32) {
                0 if cfg.wire_faults => FaultKind::Drop {
                    permille: rng.gen_range(50..=300),
                },
                1 if cfg.wire_faults => FaultKind::Duplicate {
                    permille: rng.gen_range(50..=300),
                },
                2 if cfg.wire_faults => FaultKind::Reorder {
                    permille: rng.gen_range(100..=500),
                },
                3 if cfg.wire_faults => FaultKind::Delay {
                    ms: rng.gen_range(10..=200),
                },
                4 if cfg.wire_faults && cfg.hives >= 2 => {
                    let a = rng.gen_range(1..=cfg.hives as u32);
                    let mut b = rng.gen_range(1..=cfg.hives as u32);
                    if b == a {
                        b = a % cfg.hives as u32 + 1;
                    }
                    FaultKind::Partition { a, b }
                }
                5 if cfg.crashes => {
                    // At most one hive down at a time: overlapping crash
                    // windows degrade to handler faults.
                    let end = at + for_ticks;
                    let overlaps = crash_busy.iter().any(|&(s, e)| at < e && s < end);
                    let hive = rng.gen_range(1..=cfg.hives as u32);
                    if overlaps {
                        FaultKind::HandlerFault {
                            times: rng.gen_range(1..=3),
                        }
                    } else {
                        crash_busy.push((at, end));
                        FaultKind::Crash { hive }
                    }
                }
                6 if cfg.migrations => FaultKind::ForceMigration,
                7 if cfg.membership && cfg.hives >= 2 => FaultKind::MembershipChurn,
                8 if cfg.disk_faults => {
                    // Disk faults bounce a hive repeatedly; like crashes, at
                    // most one hive may be down at a time or the registry
                    // loses quorum for the whole window.
                    let end = at + for_ticks;
                    let overlaps = crash_busy.iter().any(|&(s, e)| at < e && s < end);
                    let hive = rng.gen_range(1..=cfg.hives as u32);
                    if overlaps {
                        FaultKind::HandlerFault {
                            times: rng.gen_range(1..=3),
                        }
                    } else {
                        crash_busy.push((at, end));
                        FaultKind::DiskFault { hive }
                    }
                }
                _ => FaultKind::HandlerFault {
                    times: rng.gen_range(1..=3),
                },
            };
            windows.push(FaultWindow {
                at,
                for_ticks,
                kind,
            });
        }
        if cfg.inject_ownership_bug {
            windows.push(FaultWindow {
                at: cfg.ticks / 2,
                for_ticks: 1,
                kind: FaultKind::OwnershipBug,
            });
        }
        windows.sort_by_key(|w| (w.at, w.for_ticks));
        FaultSchedule {
            seed,
            ticks: cfg.ticks,
            windows,
        }
    }

    /// Whether this schedule cannot legitimately lose messages. The
    /// reliable channel layer masks every link fault — drop, duplicate,
    /// reorder, delay and partition windows are retransmitted through or
    /// deduplicated — so only crashes (and the deliberate ownership bug)
    /// may still destroy messages. Membership churn is lossless too: a
    /// drained hive evacuates its bees and flushes its outbox before
    /// leaving, and whatever its peers still held unacked for it is
    /// dead-lettered with full accounting, not silently lost. Lossless runs
    /// get extra final assertions: everything drains, nothing stays queued
    /// or in transit.
    pub fn is_lossless(&self) -> bool {
        self.windows.iter().all(|w| {
            !matches!(
                w.kind,
                FaultKind::Crash { .. } | FaultKind::DiskFault { .. } | FaultKind::OwnershipBug
            )
        })
    }
}

/// Parameters of a chaos run (the schedule is derived separately, from the
/// seed — see [`FaultSchedule::generate`]).
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Cluster size.
    pub hives: usize,
    /// Registry Raft voters.
    pub voters: usize,
    /// Executor workers per hive (1 = fully deterministic runs).
    pub workers: usize,
    /// Active workload ticks.
    pub ticks: u64,
    /// Virtual milliseconds per tick.
    pub tick_ms: u64,
    /// Fault-free drain ticks appended after the active phase.
    pub quiet_ticks: u64,
    /// Distinct workload keys (→ bees).
    pub keys: usize,
    /// Workload messages emitted per active tick.
    pub ops_per_tick: usize,
    /// Minimum fault windows per schedule.
    pub min_windows: usize,
    /// Maximum fault windows per schedule.
    pub max_windows: usize,
    /// Allow wire faults (drop/duplicate/reorder/delay/partition).
    pub wire_faults: bool,
    /// Allow hive crash + restart windows.
    pub crashes: bool,
    /// Allow disk-fault windows (restart storms with torn outbox tails).
    pub disk_faults: bool,
    /// Allow forced migrations.
    pub migrations: bool,
    /// Allow elastic-membership churn (live hive join + drain windows).
    pub membership: bool,
    /// Append the TEST-ONLY ownership bug to the schedule.
    pub inject_ownership_bug: bool,
    /// Stop the run at the first violating tick (what the minimizer wants);
    /// `false` keeps going and collects every violation.
    pub stop_on_violation: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            hives: 3,
            voters: 3,
            workers: 1,
            ticks: 80,
            tick_ms: 250,
            quiet_ticks: 30,
            keys: 8,
            ops_per_tick: 2,
            min_windows: 3,
            max_windows: 8,
            wire_faults: true,
            crashes: true,
            disk_faults: true,
            migrations: true,
            membership: true,
            inject_ownership_bug: false,
            stop_on_violation: true,
        }
    }
}

/// What one chaos run observed.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The seed.
    pub seed: u64,
    /// The schedule that ran.
    pub schedule: FaultSchedule,
    /// Fold of every per-tick audit — byte-identical across runs of the
    /// same seed.
    pub digest: u64,
    /// All invariant violations observed (empty on a clean run).
    pub violations: Vec<Violation>,
    /// External workload messages emitted.
    pub emits: u64,
    /// Handler invocations that committed (live hives + crash ledger).
    pub handled: u64,
    /// Messages dead-lettered.
    pub dead_lettered: u64,
    /// App frames the fabric dropped (coin, partition, down hive).
    pub dropped_app: u64,
    /// App frames the fabric delivered twice.
    pub duplicated_app: u64,
    /// Orphaned + no-bee losses on live hives plus the crash ledger.
    pub lost: u64,
    /// Channel frames retransmitted by live hives.
    pub retransmits: u64,
    /// Duplicate channel frames suppressed by live hives' receiver dedup.
    pub dups_suppressed: u64,
    /// Torn outbox-journal tails truncated across every durable restart —
    /// nonzero proves the disk-fault windows actually bit.
    pub torn_truncations: u64,
    /// Registry snapshots installed from peers across the run (summed over
    /// every hive incarnation) — nonzero proves catch-up went through the
    /// snapshot-shipping path rather than full log replay.
    pub snapshot_installs: u64,
    /// Workload messages still queued at the end.
    pub queued: u64,
    /// App frames still on the fabric at the end.
    pub in_flight_app: u64,
    /// Final `left` dictionary, aggregated across live hives.
    pub final_left: BTreeMap<String, u64>,
}

fn unique_storage_dir() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NONCE: AtomicU64 = AtomicU64::new(0);
    let n = NONCE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("beehive-chaos-{}-{n}", std::process::id()))
}

/// Appends a half-written record to a hive's durable outbox journal: a
/// header promising more payload bytes than follow, which is exactly what a
/// crash between `write` and `fsync` leaves behind. The next boot must
/// truncate it (torn tail) and replay the intact prefix. The bytes are fixed
/// so mutilation never perturbs run determinism. (Interior bit flips are
/// deliberately NOT injected into randomized schedules: they are fail-stop
/// by contract — a hive that detects one halts — and are covered by the
/// dedicated codec and storage tests instead.)
fn tear_outbox_tail(dir: &std::path::Path, id: HiveId) {
    use std::io::Write;
    let path = dir.join(format!("hive-{}.outbox", id.0));
    let Ok(mut f) = std::fs::OpenOptions::new().append(true).open(&path) else {
        return; // no journal yet — nothing to tear
    };
    let mut torn = Vec::new();
    torn.extend_from_slice(&64u32.to_le_bytes()); // length: 64 bytes promised...
    torn.extend_from_slice(&0xDEAD_BEEF_DEAD_BEEFu64.to_le_bytes());
    torn.extend_from_slice(&[0xAB; 5]); // ...5 delivered
    let _ = f.write_all(&torn);
}

/// Runs one chaos schedule to completion and reports what happened.
pub fn run(schedule: &FaultSchedule, cfg: &ChaosConfig) -> RunReport {
    let storage = (cfg.crashes || cfg.disk_faults).then(unique_storage_dir);
    let ccfg = ClusterConfig {
        hives: cfg.hives,
        voters: cfg.voters,
        tick_interval_ms: 0, // no platform ticks: ChaosOp is the only app traffic
        raft_tick_ms: 50,
        bucket_ms: 1000,
        pending_retry_ms: 500,
        replication_factor: 1,
        workers: cfg.workers,
        max_redeliveries: 3,
        redelivery_backoff_ms: 50,
        quarantine_threshold: 0, // chaos handler faults must not trip breakers
        quarantine_cooldown_ms: 5_000,
        mailbox_capacity: 0,
        dead_letter_capacity: 1_000_000,
        channel_resend_ms: 100, // retransmit within a 250 ms tick
        channel_window: 1024,
        channel_ack_flush_ms: 5,
        seed: schedule.seed,
        registry_storage_dir: storage.clone(),
    };
    let mut cluster = SimCluster::new(ccfg, |h| h.install(chaos_app()));
    cluster.fabric.reseed(schedule.seed ^ 0x5851_F42D_4C95_7F2D);
    cluster
        .elect_registry(120_000)
        .expect("chaos cluster failed to elect a registry leader");

    let mut wl = StdRng::seed_from_u64(schedule.seed ^ 0xD6E8_FEB8_6659_FD93);
    let mut emits = 0u64;
    let mut ledger = CrashLedger::default();
    // Membership-churn runtime state: the hive a churn window booted, and
    // the tick at which it starts draining (the window end). Hives that
    // completed their drain are remembered so the crash-reconcile loop never
    // tries to "restart" a slot that left the cluster for good.
    let mut churn: Option<(HiveId, u64)> = None;
    let mut departed: std::collections::BTreeSet<HiveId> = std::collections::BTreeSet::new();
    // Hives whose next restart must find a torn outbox tail on disk.
    let mut torn_pending: std::collections::BTreeSet<HiveId> = std::collections::BTreeSet::new();
    let mut digest = Digest::new();
    let mut violations: Vec<Violation> = Vec::new();
    let mut torn_truncations = 0u64;
    // Per-hive watermark of the install counter (which resets with each
    // incarnation), so the run total sums increments across restarts.
    let mut installs_seen: BTreeMap<u32, u64> = BTreeMap::new();
    let mut snapshot_installs = 0u64;
    let total_ticks = schedule.ticks + cfg.quiet_ticks;
    let mut last_audit = None;

    for t in 0..total_ticks {
        let quiet = t >= schedule.ticks;
        let active: Vec<&FaultWindow> = if quiet {
            Vec::new()
        } else {
            schedule
                .windows
                .iter()
                .filter(|w| w.at <= t && t < w.at + w.for_ticks)
                .collect()
        };

        // Crash / restart: reconcile each hive against the active windows
        // (quiet phase restarts everything), in deterministic id order.
        // Crash windows keep the hive down for the whole window; disk-fault
        // windows bounce it on alternating ticks (a restart storm), tearing
        // its outbox journal's tail before every revival.
        for id in cluster.ids() {
            if departed.contains(&id) {
                continue; // drained out of the cluster, never restarted
            }
            let crash_down = active
                .iter()
                .any(|w| matches!(w.kind, FaultKind::Crash { hive } if hive == id.0));
            let disk_down = active.iter().any(|w| {
                matches!(w.kind, FaultKind::DiskFault { hive }
                    if hive == id.0 && (t - w.at) % 2 == 0)
            });
            if (crash_down || disk_down) && cluster.is_up(id) {
                // The cleared fabric frames are not folded in: their senders'
                // reliable channels retransmit them after the restart.
                let (dead, _cleared) = cluster.crash(id);
                ledger.absorb(&dead, "ChaosOp");
                if disk_down {
                    torn_pending.insert(id);
                }
            } else if !(crash_down || disk_down) && !cluster.is_up(id) {
                if torn_pending.remove(&id) {
                    if let Some(dir) = &storage {
                        tear_outbox_tail(dir, id);
                    }
                }
                cluster.restart(id);
                // The revived hive replayed its outbox journal (truncating
                // any torn tail); its restored channel accounting comes back
                // out of the ledger.
                torn_truncations += cluster.hive(id).journal_torn_truncations();
                ledger.restore(cluster.hive(id));
            }
        }

        // Partitions: recompute the full set each tick (windows heal by
        // falling out of the active set).
        cluster.fabric.heal();
        for w in &active {
            if let FaultKind::Partition { a, b } = w.kind {
                cluster.fabric.partition(HiveId(a), HiveId(b));
            }
        }

        // Wire faults: the max of every active window.
        let mut wire = FabricFaults::default();
        for w in &active {
            match w.kind {
                FaultKind::Drop { permille } => {
                    wire.drop_rate = wire.drop_rate.max(f64::from(permille) / 1000.0)
                }
                FaultKind::Duplicate { permille } => {
                    wire.duplicate_rate = wire.duplicate_rate.max(f64::from(permille) / 1000.0)
                }
                FaultKind::Reorder { permille } => {
                    wire.reorder_rate = wire.reorder_rate.max(f64::from(permille) / 1000.0)
                }
                FaultKind::Delay { ms } => {
                    wire.latency_ms = wire.latency_ms.max(ms);
                    wire.jitter_ms = wire.jitter_ms.max(ms / 2);
                }
                _ => {}
            }
        }
        cluster.fabric.set_faults(wire);

        // Instantaneous faults fire at their window's first tick.
        for w in &active {
            if w.at != t {
                continue;
            }
            match w.kind {
                FaultKind::HandlerFault { times } => {
                    for id in cluster.live_ids() {
                        cluster
                            .hive_mut(id)
                            .inject_handler_fault(CHAOS_APP, "ChaosOp", times);
                    }
                }
                FaultKind::ForceMigration => {
                    let live = cluster.live_ids();
                    let pick = live
                        .iter()
                        .copied()
                        .find(|&id| !cluster.hive(id).active_colonies(CHAOS_APP).is_empty());
                    if let (Some(src), true) = (pick, live.len() >= 2) {
                        let bee = cluster.hive(src).active_colonies(CHAOS_APP)[0].0;
                        let pos = live.iter().position(|&x| x == src).unwrap();
                        let dst = live[(pos + 1) % live.len()];
                        cluster
                            .hive_mut(src)
                            .request_migration(CHAOS_APP, bee, src, dst);
                    }
                }
                FaultKind::MembershipChurn => {
                    // One churn at a time: extra windows while a join/drain
                    // cycle is in flight do nothing.
                    if churn.is_none() {
                        let id = cluster.join();
                        churn = Some((id, w.at + w.for_ticks));
                    }
                }
                FaultKind::OwnershipBug => {
                    let live = cluster.live_ids();
                    let found = live.first().and_then(|&first| {
                        cluster
                            .hive(first)
                            .registry_view()
                            .bees()
                            .find(|(_, rec)| rec.app == CHAOS_APP && !rec.colony.is_empty())
                            .map(|(_, rec)| (rec.colony.iter().next().unwrap().clone(), rec.hive))
                    });
                    if let Some((cell, owner)) = found {
                        if let Some(&victim) = live.iter().find(|&&h| h != owner) {
                            cluster
                                .hive_mut(victim)
                                .debug_force_own(CHAOS_APP, vec![cell]);
                        }
                    }
                }
                _ => {}
            }
        }

        // Membership churn: the joined hive drains once its window elapsed
        // AND its join completed (drain-while-joining is legal but would
        // make schedules race the promotion; waiting keeps runs exercising
        // the full staircase). Hives that finished draining are folded into
        // the ledger like crashed ones — minus the losses: a clean drain
        // leaves nothing queued — and leave the cluster for good.
        if let Some((id, drain_at)) = churn {
            if t >= drain_at
                && cluster.is_up(id)
                && cluster.hive(id).lifecycle().stage() == beehive_core::LifecycleStage::Active
            {
                cluster.drain(id);
            }
        }
        for dead in cluster.reap_departed() {
            if churn.is_some_and(|(id, _)| id == dead.id()) {
                churn = None;
            }
            departed.insert(dead.id());
            ledger.absorb(&dead, "ChaosOp");
        }

        // Workload: a few ops per active tick, to a random live hive.
        if !quiet {
            for _ in 0..cfg.ops_per_tick {
                let key = format!("k{}", wl.gen_range(0..cfg.keys));
                let amount = wl.gen_range(1..=5u64);
                let live = cluster.live_ids();
                let target = live[wl.gen_range(0..live.len())];
                cluster.hive_mut(target).emit(ChaosOp { key, amount });
                emits += 1;
            }
        }

        // Advance one tick of virtual time in small increments, stepping to
        // quiescence after each. (Not `settle_with`: delayed frames keep
        // `in_flight > 0` without producing work, which would spin it.)
        let mut advanced = 0;
        while advanced < cfg.tick_ms {
            let dt = 50.min(cfg.tick_ms - advanced);
            cluster.clock.advance(dt);
            advanced += dt;
            for _ in 0..100_000 {
                if cluster.step_all() == 0 {
                    break;
                }
            }
        }

        // Audit the whole cluster and fold it into the digest.
        let audit = gather(&cluster, CHAOS_APP, "ChaosOp", t, emits, &ledger);
        audit.fold_into(&mut digest);
        // Sum install-counter increments per hive; the counter restarts at
        // zero with each incarnation, so decreases are new baselines.
        for h in &audit.live {
            let prev = installs_seen
                .insert(h.id.0, h.snapshot_installs)
                .unwrap_or(0);
            snapshot_installs += h.snapshot_installs.saturating_sub(prev);
        }
        let v = check_all(&audit, "left", "right");
        let stop = !v.is_empty() && cfg.stop_on_violation;
        violations.extend(v);
        last_audit = Some(audit);
        if stop {
            break;
        }
    }

    let audit = last_audit.expect("at least one tick ran");
    let queued: u64 = audit.live.iter().map(|h| h.queued).sum();
    if schedule.is_lossless()
        && violations.is_empty()
        && (queued > 0 || audit.in_flight_app > 0 || audit.in_transit() != 0)
    {
        violations.push(Violation {
            checker: "drain",
            tick: audit.tick,
            detail: format!(
                "lossless schedule did not drain: {queued} queued, {} in flight, {} in transit",
                audit.in_flight_app,
                audit.in_transit()
            ),
        });
    }

    let mut final_left = BTreeMap::new();
    for h in &audit.live {
        for (_bee, dicts) in &h.dicts {
            for (name, entries) in dicts {
                if name == "left" {
                    for (k, v) in entries {
                        let n: u64 = beehive_wire::from_slice(v).unwrap_or(0);
                        *final_left.entry(k.clone()).or_insert(0) += n;
                    }
                }
            }
        }
    }
    let report = RunReport {
        seed: schedule.seed,
        schedule: schedule.clone(),
        digest: digest.finish(),
        violations,
        emits,
        handled: audit.live.iter().map(|h| h.handled).sum::<u64>() + ledger.handled,
        dead_lettered: audit.live.iter().map(|h| h.dead).sum::<u64>() + ledger.dead,
        dropped_app: audit.fabric.dropped_app,
        duplicated_app: audit.fabric.duplicated_app,
        lost: audit.live.iter().map(|h| h.orphans + h.nobee).sum::<u64>()
            + ledger.orphans
            + ledger.nobee,
        retransmits: audit.live.iter().map(|h| h.retransmits).sum(),
        dups_suppressed: audit.live.iter().map(|h| h.dups_suppressed).sum(),
        torn_truncations,
        snapshot_installs,
        queued,
        in_flight_app: audit.in_flight_app,
        final_left,
    };
    drop(cluster);
    if let Some(dir) = storage {
        let _ = std::fs::remove_dir_all(dir);
    }
    report
}

/// Generates the schedule for `seed` and runs it.
pub fn run_seed(seed: u64, cfg: &ChaosConfig) -> RunReport {
    run(&FaultSchedule::generate(seed, cfg), cfg)
}

/// Greedy schedule minimization (ddmin-lite): repeatedly drop any window
/// whose removal keeps the run violating, until no single removal does.
/// Returns the original schedule if it does not violate at all.
pub fn minimize(schedule: &FaultSchedule, cfg: &ChaosConfig) -> FaultSchedule {
    let mut best = schedule.clone();
    if run(&best, cfg).violations.is_empty() {
        return best;
    }
    loop {
        let mut improved = false;
        let mut i = 0;
        while i < best.windows.len() {
            let mut candidate = best.clone();
            candidate.windows.remove(i);
            if !run(&candidate, cfg).violations.is_empty() {
                best = candidate;
                improved = true;
            } else {
                i += 1;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// A failing seed with its minimized repro.
#[derive(Debug, Clone)]
pub struct FailureRepro {
    /// The failing seed.
    pub seed: u64,
    /// The violations the full schedule produced.
    pub violations: Vec<Violation>,
    /// The minimized schedule that still violates.
    pub minimized: FaultSchedule,
}

/// Outcome of a seed sweep.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// One report per seed, in seed order.
    pub reports: Vec<RunReport>,
    /// Failing seeds with minimized repros (empty on a clean sweep).
    pub failures: Vec<FailureRepro>,
}

/// Sweeps a seed range, minimizing the schedule of every failing seed.
pub fn sweep(seeds: std::ops::Range<u64>, cfg: &ChaosConfig) -> SweepOutcome {
    let mut reports = Vec::new();
    let mut failures = Vec::new();
    for seed in seeds {
        let report = run_seed(seed, cfg);
        if !report.violations.is_empty() {
            failures.push(FailureRepro {
                seed,
                violations: report.violations.clone(),
                minimized: minimize(&report.schedule, cfg),
            });
        }
        reports.push(report);
    }
    SweepOutcome { reports, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let cfg = ChaosConfig::default();
        assert_eq!(
            FaultSchedule::generate(7, &cfg),
            FaultSchedule::generate(7, &cfg)
        );
        assert_ne!(
            FaultSchedule::generate(7, &cfg),
            FaultSchedule::generate(8, &cfg)
        );
    }

    #[test]
    fn generate_respects_gates() {
        let cfg = ChaosConfig {
            wire_faults: false,
            crashes: false,
            disk_faults: false,
            migrations: false,
            membership: false,
            ..Default::default()
        };
        for seed in 0..16 {
            let s = FaultSchedule::generate(seed, &cfg);
            assert!(
                s.windows
                    .iter()
                    .all(|w| matches!(w.kind, FaultKind::HandlerFault { .. })),
                "gated-off kinds must fall back to handler faults: {s}"
            );
            assert!(s.is_lossless());
        }
    }

    #[test]
    fn ownership_bug_window_is_appended_when_asked() {
        let cfg = ChaosConfig {
            inject_ownership_bug: true,
            ..Default::default()
        };
        let s = FaultSchedule::generate(1, &cfg);
        assert_eq!(
            s.windows
                .iter()
                .filter(|w| w.kind == FaultKind::OwnershipBug)
                .count(),
            1
        );
    }

    #[test]
    fn membership_gate_controls_churn_windows() {
        let on = ChaosConfig::default();
        assert!(
            (0..64).any(|seed| {
                FaultSchedule::generate(seed, &on)
                    .windows
                    .iter()
                    .any(|w| w.kind == FaultKind::MembershipChurn)
            }),
            "no churn window across 64 seeds with the gate on"
        );
        let off = ChaosConfig {
            membership: false,
            ..Default::default()
        };
        for seed in 0..64 {
            assert!(FaultSchedule::generate(seed, &off)
                .windows
                .iter()
                .all(|w| w.kind != FaultKind::MembershipChurn));
        }
    }

    #[test]
    fn churn_windows_are_lossless() {
        let s = FaultSchedule {
            seed: 0,
            ticks: 20,
            windows: vec![FaultWindow {
                at: 3,
                for_ticks: 6,
                kind: FaultKind::MembershipChurn,
            }],
        };
        assert!(s.is_lossless(), "a clean drain is not message loss");
    }

    #[test]
    fn crash_windows_never_overlap() {
        // Crash AND disk-fault windows share the busy list: two hives down
        // at once would cost the 3-voter registry its quorum.
        let cfg = ChaosConfig::default();
        for seed in 0..32 {
            let s = FaultSchedule::generate(seed, &cfg);
            let crashes: Vec<(u64, u64)> = s
                .windows
                .iter()
                .filter(|w| {
                    matches!(
                        w.kind,
                        FaultKind::Crash { .. } | FaultKind::DiskFault { .. }
                    )
                })
                .map(|w| (w.at, w.at + w.for_ticks))
                .collect();
            for (i, &(s1, e1)) in crashes.iter().enumerate() {
                for &(s2, e2) in &crashes[i + 1..] {
                    assert!(e1 <= s2 || e2 <= s1, "seed {seed}: overlapping crashes");
                }
            }
        }
    }

    #[test]
    fn disk_fault_gate_controls_disk_windows_and_losslessness() {
        let on = ChaosConfig::default();
        assert!(
            (0..64).any(|seed| {
                FaultSchedule::generate(seed, &on)
                    .windows
                    .iter()
                    .any(|w| matches!(w.kind, FaultKind::DiskFault { .. }))
            }),
            "no disk-fault window across 64 seeds with the gate on"
        );
        let off = ChaosConfig {
            disk_faults: false,
            ..Default::default()
        };
        for seed in 0..64 {
            assert!(FaultSchedule::generate(seed, &off)
                .windows
                .iter()
                .all(|w| !matches!(w.kind, FaultKind::DiskFault { .. })));
        }
        let storm = FaultSchedule {
            seed: 0,
            ticks: 20,
            windows: vec![FaultWindow {
                at: 3,
                for_ticks: 6,
                kind: FaultKind::DiskFault { hive: 2 },
            }],
        };
        assert!(
            !storm.is_lossless(),
            "a restart storm may legitimately lose in-memory messages"
        );
    }
}
