//! The simulated cluster: N hives on an accounted in-memory fabric, driven
//! in deterministic virtual time.

use std::sync::Arc;

use beehive_core::{Hive, HiveConfig, HiveId, LifecycleStage, SimClock};
use beehive_net::{ClearedFrames, FabricFaults, MemFabric, TrafficMatrix};

/// Parameters for a [`SimCluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of hives (ids 1..=n).
    pub hives: usize,
    /// Number of registry Raft voters (first k hives); the rest are
    /// learners. 0 = every hive standalone (no consensus; only valid for
    /// single-hive clusters).
    pub voters: usize,
    /// Platform tick period (ms). The paper's TE uses 1-second timeouts.
    pub tick_interval_ms: u64,
    /// Raft tick duration (ms).
    pub raft_tick_ms: u64,
    /// Accounting bucket width (ms).
    pub bucket_ms: u64,
    /// Registry proposal retry (ms).
    pub pending_retry_ms: u64,
    /// Colony replication factor (1 = off).
    pub replication_factor: usize,
    /// Executor worker threads per hive (1 = sequential). Note: worker
    /// threads run in real time, so virtual-time determinism across *runs*
    /// is preserved only per round (results are merged in bee-id order).
    pub workers: usize,
    /// Redelivery budget for failed handler invocations.
    pub max_redeliveries: u32,
    /// Base redelivery backoff (ms); doubles per attempt.
    pub redelivery_backoff_ms: u64,
    /// Consecutive failures before a bee is quarantined (0 = disabled).
    pub quarantine_threshold: u32,
    /// Quarantine cooldown before the half-open probe (ms).
    pub quarantine_cooldown_ms: u64,
    /// Per-bee mailbox bound (0 = unbounded).
    pub mailbox_capacity: usize,
    /// Capacity of each hive's dead-letter ring.
    pub dead_letter_capacity: usize,
    /// Base reliable-channel retransmit timeout (ms); doubles per attempt.
    pub channel_resend_ms: u64,
    /// Max unacked channel frames retransmitted per peer per poll.
    pub channel_window: usize,
    /// Delay before a standalone channel ack flushes (ms), letting one ack
    /// frame cover a burst.
    pub channel_ack_flush_ms: u64,
    /// Seed mixed into each hive's internal randomness
    /// ([`HiveConfig::rng_seed`]); the chaos harness sets it per run so a
    /// whole cluster's random choices replay from one number.
    pub seed: u64,
    /// Directory for durable registry-Raft state. `None` keeps it in memory
    /// (a crashed hive then restarts amnesiac); chaos runs set it so
    /// [`SimCluster::restart`] exercises the durable-restart path. When set,
    /// every committed registry event is snapshotted (threshold 1) so a
    /// restarted voter can restore its mirror alone.
    pub registry_storage_dir: Option<std::path::PathBuf>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            hives: 3,
            voters: 3,
            tick_interval_ms: 1000,
            raft_tick_ms: 50,
            bucket_ms: 1000,
            pending_retry_ms: 1000,
            replication_factor: 1,
            workers: 1,
            max_redeliveries: 3,
            redelivery_backoff_ms: 100,
            quarantine_threshold: 10,
            quarantine_cooldown_ms: 5_000,
            mailbox_capacity: 0,
            dead_letter_capacity: 1024,
            channel_resend_ms: 200,
            channel_window: 1024,
            channel_ack_flush_ms: 5,
            seed: 0,
            registry_storage_dir: None,
        }
    }
}

/// Builds one hive of the cluster from its config (also the restart path —
/// a restarted hive gets a brand-new `Hive` with the same config, so durable
/// registry state is all that survives, exactly like a process restart).
fn build_hive(
    cfg: &ClusterConfig,
    ids: &[HiveId],
    id: HiveId,
    clock: &SimClock,
    fabric: &MemFabric,
) -> Hive {
    let mut hive_cfg = if cfg.voters == 0 {
        assert_eq!(cfg.hives, 1, "voters=0 only makes sense standalone");
        HiveConfig::standalone(id)
    } else {
        HiveConfig::clustered(id, ids.to_vec(), cfg.voters)
    };
    hive_cfg.tick_interval_ms = cfg.tick_interval_ms;
    hive_cfg.raft_tick_ms = cfg.raft_tick_ms;
    hive_cfg.pending_retry_ms = cfg.pending_retry_ms;
    hive_cfg.replication_factor = cfg.replication_factor;
    hive_cfg.workers = cfg.workers;
    hive_cfg.max_redeliveries = cfg.max_redeliveries;
    hive_cfg.redelivery_backoff_ms = cfg.redelivery_backoff_ms;
    hive_cfg.quarantine_threshold = cfg.quarantine_threshold;
    hive_cfg.quarantine_cooldown_ms = cfg.quarantine_cooldown_ms;
    hive_cfg.mailbox_capacity = cfg.mailbox_capacity;
    hive_cfg.dead_letter_capacity = cfg.dead_letter_capacity;
    hive_cfg.channel_resend_ms = cfg.channel_resend_ms;
    hive_cfg.channel_window = cfg.channel_window;
    hive_cfg.channel_ack_flush_ms = cfg.channel_ack_flush_ms;
    hive_cfg.rng_seed = cfg.seed;
    if let Some(dir) = &cfg.registry_storage_dir {
        hive_cfg.registry_storage_dir = Some(dir.clone());
        // A lone restarted voter can only restore its registry mirror from
        // a snapshot (the commit index is volatile), so snapshot every
        // committed event.
        hive_cfg.snapshot_interval = 1;
    }
    Hive::new(
        hive_cfg,
        Arc::new(clock.clone()),
        Box::new(fabric.endpoint(id)),
    )
}

/// A whole Beehive cluster in one process, in virtual time. Hives can be
/// crashed and restarted ([`SimCluster::crash`] / [`SimCluster::restart`]);
/// a down hive's slot stays reserved, so ids are stable.
pub struct SimCluster {
    /// The shared virtual clock.
    pub clock: SimClock,
    /// The accounted fabric.
    pub fabric: MemFabric,
    hives: Vec<Option<Hive>>,
    ids: Vec<HiveId>,
    cfg: ClusterConfig,
    install: Box<dyn FnMut(&mut Hive)>,
}

impl SimCluster {
    /// Builds the cluster and lets `install` add applications to each hive
    /// (it is kept around: a restarted hive is re-installed through it).
    pub fn new(cfg: ClusterConfig, mut install: impl FnMut(&mut Hive) + 'static) -> Self {
        assert!(cfg.hives >= 1);
        let ids: Vec<HiveId> = (1..=cfg.hives as u32).map(HiveId).collect();
        let clock = SimClock::new();
        let fabric = MemFabric::with_bucket(ids.clone(), Arc::new(clock.clone()), cfg.bucket_ms);
        let mut hives = Vec::with_capacity(cfg.hives);
        for &id in &ids {
            let mut hive = build_hive(&cfg, &ids, id, &clock, &fabric);
            install(&mut hive);
            hives.push(Some(hive));
        }
        SimCluster {
            clock,
            fabric,
            hives,
            ids,
            cfg,
            install: Box::new(install),
        }
    }

    /// Number of hive slots (live and down).
    pub fn len(&self) -> usize {
        self.hives.len()
    }

    /// Whether the cluster has no hives (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.hives.is_empty()
    }

    /// All hive ids (including down hives — ids are slot-stable).
    pub fn ids(&self) -> Vec<HiveId> {
        self.ids.clone()
    }

    /// Ids of the hives currently up, in id order.
    pub fn live_ids(&self) -> Vec<HiveId> {
        self.hives
            .iter()
            .filter_map(|h| h.as_ref().map(Hive::id))
            .collect()
    }

    /// Whether the hive is currently up.
    pub fn is_up(&self, id: HiveId) -> bool {
        self.hives[(id.0 - 1) as usize].is_some()
    }

    /// The hive with the given id. Panics if it is down.
    pub fn hive(&self, id: HiveId) -> &Hive {
        self.hives[(id.0 - 1) as usize]
            .as_ref()
            .unwrap_or_else(|| panic!("hive {id} is down"))
    }

    /// Mutable access to a hive. Panics if it is down.
    pub fn hive_mut(&mut self, id: HiveId) -> &mut Hive {
        self.hives[(id.0 - 1) as usize]
            .as_mut()
            .unwrap_or_else(|| panic!("hive {id} is down"))
    }

    /// Iterates the live hives.
    pub fn hives(&self) -> impl Iterator<Item = &Hive> {
        self.hives.iter().filter_map(Option::as_ref)
    }

    /// Crashes a hive: its in-memory state is torn down (returned for
    /// post-mortem accounting), its unread fabric queue is discarded, and
    /// the fabric drops frames addressed to it until [`SimCluster::restart`].
    /// Returns the dead hive and per-kind counts of the discarded frames.
    pub fn crash(&mut self, id: HiveId) -> (Hive, ClearedFrames) {
        let hive = self.hives[(id.0 - 1) as usize]
            .take()
            .unwrap_or_else(|| panic!("hive {id} is already down"));
        self.fabric.set_down(id, true);
        let cleared = self.fabric.clear_queue(id);
        (hive, cleared)
    }

    /// Restarts a crashed hive with the same configuration (including the
    /// durable registry storage dir, if any) and re-installs applications.
    pub fn restart(&mut self, id: HiveId) {
        let slot = (id.0 - 1) as usize;
        assert!(self.hives[slot].is_none(), "hive {id} is not down");
        self.fabric.set_down(id, false);
        let mut hive = build_hive(&self.cfg, &self.ids, id, &self.clock, &self.fabric);
        (self.install)(&mut hive);
        self.hives[slot] = Some(hive);
    }

    /// Boots a brand-new hive into the running cluster. The fabric learns
    /// it, the hive starts as a registry learner and announces itself over
    /// the membership protocol ([`Hive::begin_join`]); once caught up it
    /// requests promotion to voter on its own. Returns the new hive's id.
    pub fn join(&mut self) -> HiveId {
        let id = HiveId(self.hives.len() as u32 + 1);
        self.fabric.add_hive(id);
        let mut ids = self.ids.clone();
        ids.push(id);
        let mut hive = build_hive(&self.cfg, &ids, id, &self.clock, &self.fabric);
        (self.install)(&mut hive);
        hive.begin_join(&format!("sim://{}", id.0));
        self.ids.push(id);
        self.hives.push(Some(hive));
        id
    }

    /// Starts draining a live hive ([`Hive::begin_drain`]): its bees are
    /// evacuated onto survivors, its outbox flushed, and it leaves the
    /// registry configuration. Poll [`SimCluster::reap_departed`] to collect
    /// it once the staircase reaches `Departed`.
    pub fn drain(&mut self, id: HiveId) {
        self.hive_mut(id).begin_drain();
    }

    /// Removes hives that completed their drain (lifecycle `Departed`) from
    /// the cluster and the fabric, returning them for post-mortem
    /// accounting — their counters must be absorbed into the caller's
    /// ledger like a crashed hive's, minus the losses: a clean drain leaves
    /// nothing queued.
    pub fn reap_departed(&mut self) -> Vec<Hive> {
        let mut reaped = Vec::new();
        for slot in self.hives.iter_mut() {
            let departed = slot
                .as_ref()
                .is_some_and(|h| h.lifecycle().stage() == LifecycleStage::Departed);
            if departed {
                if let Some(hive) = slot.take() {
                    self.fabric.remove_hive(hive.id());
                    reaped.push(hive);
                }
            }
        }
        reaped
    }

    /// Steps every live hive once; returns total work done.
    pub fn step_all(&mut self) -> usize {
        self.hives
            .iter_mut()
            .filter_map(Option::as_mut)
            .map(|h| h.step())
            .sum()
    }

    /// Steps hives (and an external pump, e.g. a switch fleet) until
    /// everything is quiescent or `max_rounds` is hit. Returns total work.
    pub fn settle_with(&mut self, max_rounds: usize, mut pump: impl FnMut() -> usize) -> usize {
        let mut total = 0;
        for _ in 0..max_rounds {
            let w = self.step_all() + pump();
            total += w;
            if w == 0 && self.fabric.in_flight() == 0 {
                break;
            }
        }
        total
    }

    /// Steps until quiescent (no external pump).
    pub fn settle(&mut self, max_rounds: usize) -> usize {
        self.settle_with(max_rounds, || 0)
    }

    /// Advances virtual time by `ms` in `dt_ms` increments, settling after
    /// each increment (with an external pump).
    pub fn advance_with(&mut self, ms: u64, dt_ms: u64, mut pump: impl FnMut() -> usize) {
        let dt = dt_ms.max(1);
        let mut advanced = 0;
        while advanced < ms {
            let step = dt.min(ms - advanced);
            self.clock.advance(step);
            advanced += step;
            self.settle_with(10_000, &mut pump);
        }
    }

    /// Advances virtual time (no external pump).
    pub fn advance(&mut self, ms: u64, dt_ms: u64) {
        self.advance_with(ms, dt_ms, || 0);
    }

    /// Runs until a registry leader exists (clustered mode), up to `max_ms`
    /// virtual time. Returns the leader.
    pub fn elect_registry(&mut self, max_ms: u64) -> Result<HiveId, String> {
        let mut elapsed = 0;
        while elapsed < max_ms {
            self.clock.advance(50);
            elapsed += 50;
            self.settle(1000);
            if let Some(leader) = self
                .hives
                .iter()
                .filter_map(Option::as_ref)
                .find(|h| h.is_registry_leader())
            {
                return Ok(leader.id());
            }
        }
        Err(format!("no registry leader after {max_ms} virtual ms"))
    }

    /// Snapshot of the fabric's traffic accounting.
    pub fn matrix(&self) -> TrafficMatrix {
        self.fabric.matrix()
    }

    /// Applies a fault policy: wire faults (`drop_rate`, `latency_ms`) go to
    /// the fabric; handler faults are armed on every hive's fault table
    /// (each hive gets the full `times` budget — a colony lives on one hive,
    /// so the budget is consumed where the bee actually runs).
    pub fn set_faults(&mut self, faults: FabricFaults) {
        for (app, msg_type, times) in &faults.handler_faults {
            for hive in self.hives.iter_mut().filter_map(Option::as_mut) {
                hive.inject_handler_fault(app, msg_type, *times);
            }
        }
        self.fabric.set_faults(faults);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beehive_core::prelude::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, Serialize, Deserialize)]
    struct Inc {
        key: String,
    }
    beehive_core::impl_message!(Inc);

    fn counter_app() -> App {
        App::builder("counter")
            .handle::<Inc>(
                |m| Mapped::cell("c", &m.key),
                |m, ctx| {
                    let n: u64 = ctx
                        .get("c", &m.key)
                        .map_err(|e| e.to_string())?
                        .unwrap_or(0);
                    ctx.put("c", m.key.clone(), &(n + 1))
                        .map_err(|e| e.to_string())?;
                    Ok(())
                },
            )
            .build()
    }

    #[test]
    fn cluster_elects_registry_leader() {
        let mut c = SimCluster::new(
            ClusterConfig {
                hives: 3,
                voters: 3,
                ..Default::default()
            },
            |h| h.install(counter_app()),
        );
        let leader = c.elect_registry(60_000).unwrap();
        assert!(c.ids().contains(&leader));
    }

    #[test]
    fn messages_route_consistently_across_hives() {
        let mut c = SimCluster::new(
            ClusterConfig {
                hives: 3,
                voters: 3,
                ..Default::default()
            },
            |h| h.install(counter_app()),
        );
        c.elect_registry(60_000).unwrap();

        // The same key emitted on different hives must reach ONE bee.
        c.hive_mut(HiveId(1)).emit(Inc { key: "k".into() });
        c.hive_mut(HiveId(2)).emit(Inc { key: "k".into() });
        c.hive_mut(HiveId(3)).emit(Inc { key: "k".into() });
        c.advance(5_000, 50);

        let total_bees: usize = c.hives().map(|h| h.local_bee_count("counter")).sum();
        assert_eq!(total_bees, 1, "one colony for one key");
        let owner = c
            .hives()
            .find(|h| h.local_bee_count("counter") == 1)
            .map(|h| h.id())
            .unwrap();
        let (bee, _) = c.hive(owner).local_bees("counter")[0];
        let count: u64 = c.hive(owner).peek_state("counter", bee, "c", "k").unwrap();
        assert_eq!(count, 3, "all three increments applied");
    }

    #[test]
    fn learners_serve_local_lookups() {
        // 5 hives, 3 voters: hives 4 and 5 are learners but must still route.
        let mut c = SimCluster::new(
            ClusterConfig {
                hives: 5,
                voters: 3,
                ..Default::default()
            },
            |h| h.install(counter_app()),
        );
        c.elect_registry(60_000).unwrap();
        c.hive_mut(HiveId(5)).emit(Inc { key: "x".into() });
        c.advance(5_000, 50);
        // The bee was created on hive 5 (message origin).
        assert_eq!(c.hive(HiveId(5)).local_bee_count("counter"), 1);
        // A later message from hive 4 routes to hive 5's bee.
        c.hive_mut(HiveId(4)).emit(Inc { key: "x".into() });
        c.advance(5_000, 50);
        let (bee, _) = c.hive(HiveId(5)).local_bees("counter")[0];
        let count: u64 = c
            .hive(HiveId(5))
            .peek_state("counter", bee, "c", "x")
            .unwrap();
        assert_eq!(count, 2);
    }

    #[test]
    fn injected_handler_faults_are_retried_transparently() {
        let mut c = SimCluster::new(
            ClusterConfig {
                hives: 1,
                voters: 0,
                ..Default::default()
            },
            |h| h.install(counter_app()),
        );
        c.set_faults(FabricFaults::default().fail_handler("counter", "Inc", 1));
        c.hive_mut(HiveId(1)).emit(Inc { key: "k".into() });
        c.advance(2_000, 50);
        let (bee, _) = c.hive(HiveId(1)).local_bees("counter")[0];
        let count: u64 = c
            .hive(HiveId(1))
            .peek_state("counter", bee, "c", "k")
            .unwrap();
        assert_eq!(count, 1, "redelivery applied after the injected failure");
        assert!(c.hive(HiveId(1)).counters().redeliveries >= 1);
        assert_eq!(c.hive(HiveId(1)).handler_faults().armed(), 0);
    }

    #[test]
    fn crash_and_restart_cycle_keeps_slots_stable() {
        let mut c = SimCluster::new(
            ClusterConfig {
                hives: 3,
                voters: 3,
                ..Default::default()
            },
            |h| h.install(counter_app()),
        );
        c.elect_registry(60_000).unwrap();
        let (dead, _cleared) = c.crash(HiveId(2));
        assert_eq!(dead.id(), HiveId(2));
        assert!(!c.is_up(HiveId(2)));
        assert_eq!(c.live_ids(), vec![HiveId(1), HiveId(3)]);
        // The survivors keep running (quorum of 2/3 voters).
        c.advance(2_000, 50);
        c.restart(HiveId(2));
        assert!(c.is_up(HiveId(2)));
        assert_eq!(c.live_ids().len(), 3);
        // The restarted hive rejoins and serves traffic again.
        c.advance(5_000, 50);
        c.hive_mut(HiveId(2)).emit(Inc { key: "z".into() });
        c.advance(5_000, 50);
        let total: usize = c.hives().map(|h| h.local_bee_count("counter")).sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn hive_joins_live_and_drains_out() {
        let mut c = SimCluster::new(
            ClusterConfig {
                hives: 3,
                voters: 3,
                ..Default::default()
            },
            |h| h.install(counter_app()),
        );
        c.elect_registry(60_000).unwrap();
        // Seed six colonies, all born on hive 1 (message origin).
        for k in 0..6 {
            c.hive_mut(HiveId(1)).emit(Inc {
                key: format!("k{k}"),
            });
        }
        c.advance(5_000, 50);
        assert_eq!(c.hive(HiveId(1)).local_bee_count("counter"), 6);

        // A fourth hive joins the running cluster and is promoted to voter.
        let new = c.join();
        assert_eq!(new, HiveId(4));
        c.advance(15_000, 50);
        assert_eq!(
            c.hive(new).lifecycle().stage(),
            LifecycleStage::Active,
            "joiner caught up and was promoted"
        );

        // Drain hive 1: its colonies evacuate and it departs cleanly.
        c.drain(HiveId(1));
        c.advance(30_000, 50);
        let reaped = c.reap_departed();
        assert_eq!(reaped.len(), 1, "hive 1 completed its drain");
        assert_eq!(reaped[0].id(), HiveId(1));
        assert_eq!(reaped[0].local_bee_count("counter"), 0, "all bees left");
        assert_eq!(
            reaped[0].channel_stats().outbox_depth,
            0,
            "outbox fully acked"
        );
        assert!(!c.live_ids().contains(&HiveId(1)));

        // Survivors own every colony exactly once and keep serving traffic.
        let total: usize = c.hives().map(|h| h.local_bee_count("counter")).sum();
        assert_eq!(total, 6, "every evacuated colony has exactly one owner");
        c.hive_mut(HiveId(2)).emit(Inc { key: "k1".into() });
        c.advance(5_000, 50);
        let owner = c
            .hives()
            .find(|h| {
                h.local_bees("counter")
                    .iter()
                    .any(|(b, _)| h.peek_state::<u64>("counter", *b, "c", "k1").is_some())
            })
            .expect("k1 has an owner");
        let (bee, _) = owner
            .local_bees("counter")
            .into_iter()
            .find(|(b, _)| owner.peek_state::<u64>("counter", *b, "c", "k1").is_some())
            .unwrap();
        let count: u64 = owner.peek_state("counter", bee, "c", "k1").unwrap();
        assert_eq!(count, 2, "state survived the evacuation");
    }

    #[test]
    fn fabric_accounts_inter_hive_traffic() {
        let mut c = SimCluster::new(
            ClusterConfig {
                hives: 3,
                voters: 3,
                ..Default::default()
            },
            |h| h.install(counter_app()),
        );
        c.elect_registry(60_000).unwrap();
        c.hive_mut(HiveId(2)).emit(Inc { key: "k".into() });
        c.advance(3_000, 50);
        let m = c.matrix();
        // Raft heartbeats alone guarantee nonzero traffic.
        assert!(m.total(&[beehive_core::FrameKind::Raft]) > 0);
    }
}
