//! The switch fleet: emulated OpenFlow switches attached to their master
//! hives. Implements [`SwitchIo`] so the driver app can write to switches,
//! and pumps switch replies back into the platform as [`SwitchUpstream`]
//! messages — the full OpenFlow wire codec is exercised in both directions.

use std::collections::{BTreeMap, VecDeque};

use beehive_core::{HiveHandle, HiveId};
use beehive_openflow::{
    driver::SwitchUpstream, switch::SwitchModel, wire::OfMessage, FlowModCommand, Match, SwitchIo,
};
use parking_lot::Mutex;

use crate::workload::FlowSpec;

struct SwitchSlot {
    model: SwitchModel,
    /// Controller-to-switch bytes awaiting processing.
    inbox: VecDeque<Vec<u8>>,
}

/// All emulated switches of a simulation.
pub struct SwitchFleet {
    slots: Mutex<BTreeMap<u64, SwitchSlot>>,
    masters: BTreeMap<u64, HiveId>,
    handles: BTreeMap<u32, HiveHandle>,
}

impl SwitchFleet {
    /// Builds a fleet: one switch per `(dpid, ports)`, each attached to its
    /// master hive's handle.
    pub fn new(
        switches: impl IntoIterator<Item = (u64, u16)>,
        masters: BTreeMap<u64, HiveId>,
        handles: impl IntoIterator<Item = HiveHandle>,
    ) -> Self {
        let slots = switches
            .into_iter()
            .map(|(dpid, ports)| {
                (
                    dpid,
                    SwitchSlot {
                        model: SwitchModel::new(dpid, ports),
                        inbox: VecDeque::new(),
                    },
                )
            })
            .collect();
        let handles = handles.into_iter().map(|h| (h.hive().0, h)).collect();
        SwitchFleet {
            slots: Mutex::new(slots),
            masters,
            handles,
        }
    }

    /// The master hive of `dpid`.
    pub fn master_of(&self, dpid: u64) -> Option<HiveId> {
        self.masters.get(&dpid).copied()
    }

    fn upstream(&self, dpid: u64, bytes: Vec<u8>) {
        let Some(master) = self.masters.get(&dpid) else {
            return;
        };
        let Some(handle) = self.handles.get(&master.0) else {
            return;
        };
        handle.emit(SwitchUpstream { dpid, bytes });
    }

    /// Starts the OpenFlow handshake for every switch (each sends HELLO to
    /// its master hive).
    pub fn connect_all(&self) {
        let dpids: Vec<u64> = self.slots.lock().keys().copied().collect();
        for dpid in dpids {
            let hello = self.slots.lock().get_mut(&dpid).unwrap().model.hello();
            self.upstream(dpid, hello);
        }
    }

    /// Processes pending controller-to-switch messages and sends replies
    /// upstream. Returns the number of messages processed.
    pub fn pump(&self) -> usize {
        let mut processed = 0;
        // Collect replies outside the lock to avoid holding it while the
        // handles enqueue (they're lock-free channels, but keep it tidy).
        let mut replies: Vec<(u64, Vec<u8>)> = Vec::new();
        {
            let mut slots = self.slots.lock();
            for (dpid, slot) in slots.iter_mut() {
                while let Some(bytes) = slot.inbox.pop_front() {
                    processed += 1;
                    if let Ok(outs) = slot.model.handle_bytes(&bytes) {
                        for out in outs {
                            replies.push((*dpid, out));
                        }
                    }
                }
            }
        }
        for (dpid, bytes) in replies {
            self.upstream(dpid, bytes);
        }
        processed
    }

    /// Installs default routes for the given flows directly (the paper's TE
    /// "installs default routes to ensure reachability"); goes through the
    /// switch's FLOW_MOD handling.
    pub fn install_default_routes(&self, flows: &[FlowSpec]) {
        let mut slots = self.slots.lock();
        for f in flows {
            if let Some(slot) = slots.get_mut(&f.switch) {
                slot.model.handle(OfMessage::FlowMod {
                    xid: 0,
                    match_: f.rule(),
                    cookie: 0,
                    command: FlowModCommand::Add,
                    idle_timeout: 0,
                    hard_timeout: 0,
                    priority: 1,
                    actions: vec![beehive_openflow::Action::Output {
                        port: 1,
                        max_len: 0,
                    }],
                });
            }
        }
    }

    /// Advances every switch's local clock and accounts `dt_secs` worth of
    /// traffic for each flow.
    pub fn advance_traffic(&self, flows: &[FlowSpec], dt_secs: u32) {
        let mut slots = self.slots.lock();
        for slot in slots.values_mut() {
            slot.model.advance_time(dt_secs);
        }
        for f in flows {
            if let Some(slot) = slots.get_mut(&f.switch) {
                let bytes = f.rate_bytes_per_sec * dt_secs as u64;
                let packets = (bytes / 1000).max(1);
                slot.model.account_traffic(&f.header(), packets, bytes);
            }
        }
    }

    /// Number of flows installed on `dpid` (inspection).
    pub fn flow_count(&self, dpid: u64) -> usize {
        self.slots
            .lock()
            .get(&dpid)
            .map(|s| s.model.flows().len())
            .unwrap_or(0)
    }

    /// Runs a packet through `dpid`'s table (for learning-switch scenarios):
    /// `Ok(out_ports)` or `Err(packet-in bytes already sent upstream)`.
    pub fn inject_packet(&self, dpid: u64, header: &Match, len: usize) -> Option<Vec<u16>> {
        let result = {
            let mut slots = self.slots.lock();
            let slot = slots.get_mut(&dpid)?;
            slot.model.process_packet(header, len)
        };
        match result {
            Ok(actions) => Some(
                actions
                    .into_iter()
                    .map(|beehive_openflow::Action::Output { port, .. }| port)
                    .collect(),
            ),
            Err(packet_in) => {
                self.upstream(dpid, packet_in.encode());
                Some(Vec::new())
            }
        }
    }

    /// All datapath ids.
    pub fn dpids(&self) -> Vec<u64> {
        self.slots.lock().keys().copied().collect()
    }

    /// Emulates a port status change on `dpid`: the switch notifies its
    /// master controller with an OpenFlow PORT_STATUS message
    /// (`reason`: 0 = add, 1 = delete, 2 = modify).
    pub fn set_port_status(&self, dpid: u64, port: u16, reason: u8) {
        let msg = beehive_openflow::wire::OfMessage::PortStatus {
            xid: 0,
            reason,
            desc: beehive_openflow::wire::PhyPort {
                port_no: port,
                hw_addr: [0; 6],
                name: format!("s{dpid}-eth{port}"),
            },
        };
        self.upstream(dpid, msg.encode());
    }
}

impl SwitchIo for SwitchFleet {
    fn send(&self, dpid: u64, bytes: Vec<u8>) {
        if let Some(slot) = self.slots.lock().get_mut(&dpid) {
            slot.inbox.push_back(bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beehive_core::prelude::*;
    use beehive_openflow::driver::{driver_app, FlowStatQuery, StatReply, DRIVER_APP};
    use std::sync::Arc;

    fn one_hive_fleet() -> (Hive, Arc<SwitchFleet>) {
        let mut hive = Hive::new(
            HiveConfig::standalone(HiveId(1)),
            Arc::new(SystemClock::new()),
            Box::new(Loopback::new(HiveId(1))),
        );
        let masters: BTreeMap<u64, HiveId> = [(1u64, HiveId(1)), (2, HiveId(1))].into();
        let fleet = Arc::new(SwitchFleet::new(
            vec![(1u64, 4u16), (2, 4)],
            masters,
            vec![hive.handle()],
        ));
        hive.install(driver_app(fleet.clone()));
        (hive, fleet)
    }

    fn settle(hive: &mut Hive, fleet: &SwitchFleet) {
        for _ in 0..100 {
            let w = hive.step() + fleet.pump();
            if w == 0 {
                break;
            }
        }
    }

    #[test]
    fn handshake_creates_driver_bees_per_switch() {
        let (mut hive, fleet) = one_hive_fleet();
        fleet.connect_all();
        settle(&mut hive, &fleet);
        assert_eq!(hive.local_bee_count(DRIVER_APP), 2);
    }

    #[test]
    fn stats_roundtrip_through_fleet() {
        let (mut hive, fleet) = one_hive_fleet();
        fleet.connect_all();
        settle(&mut hive, &fleet);

        let flows = crate::workload::generate_flows(
            &[1, 2],
            &crate::workload::WorkloadConfig {
                flows_per_switch: 5,
                ..Default::default()
            },
        );
        fleet.install_default_routes(&flows);
        assert_eq!(fleet.flow_count(1), 5);
        fleet.advance_traffic(&flows, 2);

        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        hive.install(
            App::builder("sink")
                .handle::<StatReply>(
                    |m| Mapped::cell("x", m.switch.to_string()),
                    move |m, _| {
                        seen2.lock().push((m.switch, m.flows.len()));
                        Ok(())
                    },
                )
                .build(),
        );
        hive.emit(FlowStatQuery { switch: 1 });
        settle(&mut hive, &fleet);
        assert_eq!(seen.lock().clone(), vec![(1, 5)]);
    }

    #[test]
    fn port_status_reaches_the_platform() {
        use beehive_openflow::driver::PortStatusEvent;
        let (mut hive, fleet) = one_hive_fleet();
        fleet.connect_all();
        settle(&mut hive, &fleet);
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let s2 = seen.clone();
        hive.install(
            App::builder("ps-sink")
                .handle::<PortStatusEvent>(
                    |m| Mapped::cell("x", m.switch.to_string()),
                    move |m, _| {
                        s2.lock().push((m.switch, m.port, m.reason));
                        Ok(())
                    },
                )
                .build(),
        );
        fleet.set_port_status(1, 3, 1); // port 3 down
        settle(&mut hive, &fleet);
        assert_eq!(seen.lock().clone(), vec![(1, 3, 1)]);
    }

    #[test]
    fn traffic_accounting_reflects_rates() {
        let (mut hive, fleet) = one_hive_fleet();
        fleet.connect_all();
        settle(&mut hive, &fleet);
        let flows = vec![FlowSpec {
            switch: 1,
            nw_src: 10,
            nw_dst: 20,
            rate_bytes_per_sec: 500,
            elephant: false,
        }];
        fleet.install_default_routes(&flows);
        fleet.advance_traffic(&flows, 3);
        // 3 seconds at 500 B/s.
        let slots = fleet.slots.lock();
        assert_eq!(slots[&1].model.flows()[0].byte_count, 1500);
    }
}
