//! Cluster-wide invariant checkers for the chaos harness.
//!
//! After every virtual tick the chaos runner snapshots the whole cluster
//! into a [`ClusterAudit`] — per-hive counters, colonies, dictionary
//! contents, registry digests, plus fabric fault accounting — and runs the
//! six checkers over it:
//!
//! 1. **Ownership exclusivity** ([`check_ownership`]): no cell is owned by
//!    two live active bees, and no bee is active on two hives.
//! 2. **Registry agreement** ([`check_registry_agreement`]): hives that
//!    applied the same committed prefix (equal `applied_seq`) hold
//!    byte-identical registry mirrors.
//! 3. **Message conservation** ([`check_conservation`]): every external
//!    emit is handled, queued, dead-lettered, absorbed by a crash ledger,
//!    or still in transit on a reliable channel — nothing vanishes
//!    silently. Fabric drops and duplicates no longer enter the equation:
//!    the channel layer retransmits the former and suppresses the latter.
//! 4. **Transaction atomicity** ([`check_atomicity`]): paired dictionary
//!    writes performed in one transaction are never observed torn, across
//!    crashes and restarts.
//! 5. **Trace well-formedness** ([`check_traces`]): no recorded span has a
//!    zero trace/span id or is its own parent.
//! 6. **Event-journal well-formedness** ([`check_events`]): the flight
//!    recorder never produced an event whose JSON rendering is malformed
//!    (unbalanced quotes / raw control characters), as counted by the
//!    journal's own self-audit.
//!
//! Audits also fold into a [`Digest`] that deliberately excludes wall-clock
//! times and span ids (the only values that may differ between two runs of
//! the same seed), so two runs of one seed produce byte-identical digests.
//! The event-journal counter is likewise excluded: event counts depend on
//! wall-clock-driven paths (connect backoff, half-open probes) and auditing
//! them would make digests timing-sensitive; the checker gates on the
//! *malformed* count instead, which must always be zero.

use std::collections::BTreeMap;

use beehive_core::{BeeId, Cell, Hive, HiveId};
use beehive_net::FaultStats;

use crate::cluster::SimCluster;

/// One invariant violation: which checker, at which virtual tick, and what
/// it saw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The checker that fired (`"ownership"`, `"registry"`,
    /// `"conservation"`, `"atomicity"`, `"traces"`, `"events"`).
    pub checker: &'static str,
    /// Virtual tick at which the audit was taken.
    pub tick: u64,
    /// Human-readable description of the violation.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[tick {}] {}: {}", self.tick, self.checker, self.detail)
    }
}

/// Workload accounting absorbed from crashed hives. A crash legitimately
/// destroys messages (queued mail, unread socket buffers) and forgets
/// counters; the ledger folds them in at crash time so conservation still
/// balances afterwards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrashLedger {
    /// `handled_ok` of crashed hives at crash time.
    pub handled: u64,
    /// `dead_letters` of crashed hives.
    pub dead: u64,
    /// `dropped_orphans` of crashed hives.
    pub orphans: u64,
    /// `lost_no_bee` of crashed hives.
    pub nobee: u64,
    /// Workload messages queued inside crashed hives (lost with them).
    pub queued: u64,
    /// Channel sequence numbers issued by crashed hives (`chan_sent` at
    /// crash time), kept so cluster-wide in-transit accounting survives the
    /// crash.
    pub chan_sent: u64,
    /// Channel deliveries recorded by crashed hives (`chan_delivered` at
    /// crash time).
    pub chan_delivered: u64,
    /// Channel envelopes expired by peer retirement on crashed hives —
    /// already dead-lettered there, so they must leave the in-transit term.
    pub chan_expired: u64,
}

impl CrashLedger {
    /// Folds a freshly crashed hive into the ledger: its counters, the
    /// workload messages (wire-type suffix `suffix`) still queued inside it,
    /// and its channel send/delivery accounting. Fabric frames cleared at
    /// crash time are *not* lost anymore — the senders' reliable channels
    /// retransmit them — so nothing else is absorbed.
    pub fn absorb(&mut self, hive: &Hive, suffix: &str) {
        let c = hive.counters();
        self.handled += c.handled_ok;
        self.dead += c.dead_letters;
        self.orphans += c.dropped_orphans;
        self.nobee += c.lost_no_bee;
        self.queued += hive.queued_messages(suffix);
        let ch = hive.channel_stats();
        self.chan_sent += ch.sent;
        self.chan_delivered += ch.delivered;
        self.chan_expired += ch.expired;
    }

    /// Subtracts a durably restarted hive's recovered channel accounting:
    /// its outbox journal restored the per-peer sequence and dedup state, so
    /// whatever the revived hive now reports again must come back out of the
    /// ledger to avoid double counting. Amnesiac restarts report zero and
    /// subtract nothing.
    pub fn restore(&mut self, hive: &Hive) {
        let ch = hive.channel_stats();
        self.chan_sent = self.chan_sent.saturating_sub(ch.sent);
        self.chan_delivered = self.chan_delivered.saturating_sub(ch.delivered);
        self.chan_expired = self.chan_expired.saturating_sub(ch.expired);
    }

    /// Total messages the ledger accounts for (channel counters excluded —
    /// they feed the in-transit term, not the consumed side).
    pub fn total(&self) -> u64 {
        self.handled + self.dead + self.orphans + self.nobee + self.queued
    }
}

/// One live hive's slice of a [`ClusterAudit`].
#[derive(Debug, Clone)]
pub struct HiveAudit {
    /// The hive.
    pub id: HiveId,
    /// Registry events applied locally (the relay fence).
    pub applied_seq: u64,
    /// FNV-1a digest of the serialized registry mirror.
    pub registry_digest: u64,
    /// Index the registry raft log has been compacted through. Recovery
    /// mechanism, not state — report-only (excluded from the digest fold,
    /// like `malformed_events`), but the snapshots checker bounds it by the
    /// applied fence.
    pub snapshot_index: u64,
    /// Registry snapshots installed from peers in this hive incarnation.
    /// Nonzero means this hive's registry mirror was (at least partly)
    /// snapshot-restored rather than log-replayed — and its
    /// `registry_digest` must still agree with every full-replay peer at the
    /// same `applied_seq`, which `check_registry_agreement` enforces.
    pub snapshot_installs: u64,
    /// Handler invocations that committed.
    pub handled: u64,
    /// Messages dead-lettered.
    pub dead: u64,
    /// Orphans dropped after TTL.
    pub orphans: u64,
    /// Messages lost because the addressed bee no longer exists.
    pub nobee: u64,
    /// Workload messages queued anywhere inside the hive.
    pub queued: u64,
    /// Channel sequence numbers issued toward peers (reliable-channel sends).
    pub chan_sent: u64,
    /// Channel deliveries accepted by dedup (monotonic across peer epochs).
    pub chan_delivered: u64,
    /// Channel envelopes expired by peer retirement (dead-lettered at the
    /// departed-peer boundary — they will never be delivered).
    pub chan_expired: u64,
    /// Channel frames retransmitted after an ack timeout.
    pub retransmits: u64,
    /// Duplicate channel frames suppressed by receiver dedup.
    pub dups_suppressed: u64,
    /// Active bees of the audited app with their colonies, sorted by bee id.
    pub colonies: Vec<(BeeId, Vec<Cell>)>,
    /// Per-bee dictionary contents, parallel to `colonies`.
    pub dicts: Vec<(BeeId, Vec<(String, Vec<(String, Vec<u8>)>)>)>,
    /// Recorded trace spans that are structurally malformed (zero ids, or a
    /// span that is its own parent).
    pub malformed_spans: u64,
    /// Flight-recorder events whose JSON rendering failed the journal's
    /// self-audit (unbalanced quotes or raw control characters).
    pub malformed_events: u64,
}

/// A whole-cluster snapshot taken between virtual ticks, when no handler is
/// running and all in-flight work is visible in queues.
#[derive(Debug, Clone)]
pub struct ClusterAudit {
    /// Virtual tick of the snapshot.
    pub tick: u64,
    /// External workload messages emitted so far.
    pub emits: u64,
    /// One entry per live hive, in id order.
    pub live: Vec<HiveAudit>,
    /// Fabric fault accounting (drops, duplicates, reorders).
    pub fabric: FaultStats,
    /// App frames currently queued on the fabric.
    pub in_flight_app: u64,
    /// Accounting absorbed from crashed hives.
    pub ledger: CrashLedger,
}

/// Snapshots the cluster: counters, colonies and dictionaries of `app`,
/// queued workload messages (wire-type suffix `suffix`), registry digests
/// and fabric accounting. Call between ticks, after the cluster has been
/// stepped (so the cross-thread handle channels are drained).
pub fn gather(
    cluster: &SimCluster,
    app: &str,
    suffix: &str,
    tick: u64,
    emits: u64,
    ledger: &CrashLedger,
) -> ClusterAudit {
    let mut live = Vec::new();
    for hive in cluster.hives() {
        let c = hive.counters();
        let ch = hive.channel_stats();
        let colonies = hive.active_colonies(app);
        let dicts = colonies
            .iter()
            .map(|(bee, _)| (*bee, hive.audit_dicts(app, *bee)))
            .collect();
        let malformed_spans = hive
            .tracer()
            .snapshot()
            .iter()
            .filter(|s| s.trace_id == 0 || s.span_id == 0 || s.parent_span == s.span_id)
            .count() as u64;
        live.push(HiveAudit {
            id: hive.id(),
            applied_seq: hive.applied_seq(),
            registry_digest: hive.registry_digest(),
            snapshot_index: hive.registry_snapshot_index(),
            snapshot_installs: hive.registry_snapshot_installs(),
            handled: c.handled_ok,
            dead: c.dead_letters,
            orphans: c.dropped_orphans,
            nobee: c.lost_no_bee,
            queued: hive.queued_messages(suffix),
            chan_sent: ch.sent,
            chan_delivered: ch.delivered,
            chan_expired: ch.expired,
            retransmits: ch.retransmits,
            dups_suppressed: ch.dups_suppressed,
            colonies,
            dicts,
            malformed_spans,
            malformed_events: hive.events().malformed(),
        });
    }
    live.sort_by_key(|a| a.id);
    ClusterAudit {
        tick,
        emits,
        live,
        fabric: cluster.fabric.fault_stats(),
        in_flight_app: cluster.fabric.in_flight_app(),
        ledger: *ledger,
    }
}

/// Ownership exclusivity: a cell must have at most one live active owner,
/// and a bee must not be active on two hives.
pub fn check_ownership(audit: &ClusterAudit) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut cell_owners: BTreeMap<&Cell, Vec<(HiveId, BeeId)>> = BTreeMap::new();
    let mut bee_hives: BTreeMap<BeeId, Vec<HiveId>> = BTreeMap::new();
    for h in &audit.live {
        for (bee, colony) in &h.colonies {
            bee_hives.entry(*bee).or_default().push(h.id);
            for cell in colony {
                cell_owners.entry(cell).or_default().push((h.id, *bee));
            }
        }
    }
    for (cell, owners) in cell_owners {
        if owners.len() > 1 {
            out.push(Violation {
                checker: "ownership",
                tick: audit.tick,
                detail: format!("cell {cell:?} owned by {owners:?}"),
            });
        }
    }
    for (bee, hives) in bee_hives {
        if hives.len() > 1 {
            out.push(Violation {
                checker: "ownership",
                tick: audit.tick,
                detail: format!("bee {bee} active on {hives:?}"),
            });
        }
    }
    out
}

/// Registry agreement: hives with equal `applied_seq` applied the same
/// committed prefix and must hold byte-identical registry mirrors.
pub fn check_registry_agreement(audit: &ClusterAudit) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut by_seq: BTreeMap<u64, (HiveId, u64)> = BTreeMap::new();
    for h in &audit.live {
        match by_seq.get(&h.applied_seq) {
            None => {
                by_seq.insert(h.applied_seq, (h.id, h.registry_digest));
            }
            Some(&(other, digest)) if digest != h.registry_digest => {
                out.push(Violation {
                    checker: "registry",
                    tick: audit.tick,
                    detail: format!(
                        "hives {other} and {} both applied seq {} but disagree \
                         ({digest:#018x} vs {:#018x})",
                        h.id, h.applied_seq, h.registry_digest
                    ),
                });
            }
            Some(_) => {}
        }
    }
    out
}

/// Message conservation: every external emit must be handled, queued,
/// dead-lettered, dropped with a counter, absorbed by the crash ledger, or
/// still in transit on a reliable channel.
///
/// Fabric-level drops, duplicates and queued frames no longer enter the
/// equation: the channel layer retransmits drops, suppresses duplicates,
/// and owns every relayed frame from `wrap` to delivery — all of which is
/// captured by `in_transit = chan_sent − chan_delivered` (including crashed
/// hives' ledgered counts). The term is signed: an amnesiac receiver
/// restart legitimately re-delivers, making cumulative deliveries exceed
/// sends, with the double-handling showing up in `handled`.
pub fn check_conservation(audit: &ClusterAudit) -> Vec<Violation> {
    let live: u64 = audit
        .live
        .iter()
        .map(|h| h.handled + h.dead + h.orphans + h.nobee + h.queued)
        .sum();
    let in_transit = audit.in_transit();
    let consumed = i128::from(live) + i128::from(audit.ledger.total()) + in_transit;
    if i128::from(audit.emits) != consumed {
        let per_hive: Vec<String> = audit
            .live
            .iter()
            .map(|h| {
                format!(
                    "{}: handled={} dead={} orphans={} nobee={} queued={} \
                     chan_sent={} chan_delivered={} chan_expired={}",
                    h.id,
                    h.handled,
                    h.dead,
                    h.orphans,
                    h.nobee,
                    h.queued,
                    h.chan_sent,
                    h.chan_delivered,
                    h.chan_expired
                )
            })
            .collect();
        return vec![Violation {
            checker: "conservation",
            tick: audit.tick,
            detail: format!(
                "emits {} != live {} + ledger {} + in-transit {} (missing {}) [{}]",
                audit.emits,
                live,
                audit.ledger.total(),
                in_transit,
                i128::from(audit.emits) - consumed,
                per_hive.join("; ")
            ),
        }];
    }
    Vec::new()
}

/// Transaction atomicity: dictionaries `left` and `right` are written as a
/// pair inside every workload transaction, so for every bee and key the two
/// stored values must be identical — a mismatch means a torn transaction
/// (e.g. half a transaction surviving a crash-restart).
pub fn check_atomicity(audit: &ClusterAudit, left: &str, right: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    for h in &audit.live {
        for (bee, dicts) in &h.dicts {
            let find = |name: &str| -> BTreeMap<&String, &Vec<u8>> {
                dicts
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, entries)| entries.iter().map(|(k, v)| (k, v)).collect())
                    .unwrap_or_default()
            };
            let l = find(left);
            let r = find(right);
            for (key, lv) in &l {
                if r.get(*key) != Some(lv) {
                    out.push(Violation {
                        checker: "atomicity",
                        tick: audit.tick,
                        detail: format!(
                            "hive {} bee {bee} key {key:?}: {left}={lv:?} but {right}={:?}",
                            h.id,
                            r.get(*key)
                        ),
                    });
                }
            }
            for key in r.keys() {
                if !l.contains_key(*key) {
                    out.push(Violation {
                        checker: "atomicity",
                        tick: audit.tick,
                        detail: format!(
                            "hive {} bee {bee} key {key:?}: {right} written without {left}",
                            h.id
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Trace well-formedness: every recorded span has nonzero trace and span
/// ids and is not its own parent.
pub fn check_traces(audit: &ClusterAudit) -> Vec<Violation> {
    audit
        .live
        .iter()
        .filter(|h| h.malformed_spans > 0)
        .map(|h| Violation {
            checker: "traces",
            tick: audit.tick,
            detail: format!("hive {}: {} malformed trace spans", h.id, h.malformed_spans),
        })
        .collect()
}

/// Event-journal well-formedness: the flight recorder's self-audit must
/// never have counted a malformed JSON rendering. Unlike the other
/// counters this one is *not* folded into the digest — event volume is
/// timing-sensitive — but a nonzero malformed count is always a bug.
pub fn check_events(audit: &ClusterAudit) -> Vec<Violation> {
    audit
        .live
        .iter()
        .filter(|h| h.malformed_events > 0)
        .map(|h| Violation {
            checker: "events",
            tick: audit.tick,
            detail: format!(
                "hive {}: {} malformed flight-recorder events",
                h.id, h.malformed_events
            ),
        })
        .collect()
}

/// Snapshot/compaction sanity: the compaction horizon must never pass the
/// applied fence — a log truncated beyond what the state machine has applied
/// would leave a gap no replay can cross. Together with
/// [`check_registry_agreement`] (digests must match at equal `applied_seq`)
/// this is the snapshot-vs-replay equivalence invariant: a hive whose
/// mirror was restored from a shipped snapshot (`snapshot_installs > 0`)
/// participates in the same digest comparison as its full-replay peers, so
/// any divergence introduced by the snapshot path is caught the same tick.
pub fn check_snapshots(audit: &ClusterAudit) -> Vec<Violation> {
    audit
        .live
        .iter()
        .filter(|h| h.snapshot_index > h.applied_seq)
        .map(|h| Violation {
            checker: "snapshots",
            tick: audit.tick,
            detail: format!(
                "hive {}: compaction horizon {} is past the applied fence {}",
                h.id, h.snapshot_index, h.applied_seq
            ),
        })
        .collect()
}

/// Runs all seven checkers over one audit.
pub fn check_all(audit: &ClusterAudit, left: &str, right: &str) -> Vec<Violation> {
    let mut out = check_ownership(audit);
    out.extend(check_registry_agreement(audit));
    out.extend(check_conservation(audit));
    out.extend(check_atomicity(audit, left, right));
    out.extend(check_traces(audit));
    out.extend(check_events(audit));
    out.extend(check_snapshots(audit));
    out
}

/// An incrementally-fed FNV-1a 64-bit digest. Everything the chaos runner
/// observes folds into one of these; two runs of the same seed must finish
/// with identical values.
#[derive(Debug, Clone, Copy)]
pub struct Digest(u64);

impl Default for Digest {
    fn default() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }
}

impl Digest {
    /// A fresh digest at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds one u64 (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl ClusterAudit {
    /// Messages currently owned by reliable channels (sent but not yet
    /// accepted by receiver dedup), cluster-wide and including crashed
    /// hives' ledgered counts. Negative when an amnesiac receiver restart
    /// caused legitimate re-deliveries.
    pub fn in_transit(&self) -> i128 {
        let sent: u64 = self.live.iter().map(|h| h.chan_sent).sum::<u64>() + self.ledger.chan_sent;
        let delivered: u64 =
            self.live.iter().map(|h| h.chan_delivered).sum::<u64>() + self.ledger.chan_delivered;
        // Envelopes expired by peer retirement were counted at send time but
        // will never be delivered — the retiring hive dead-lettered them, so
        // they re-enter the books through its `dead` counter instead.
        let expired: u64 =
            self.live.iter().map(|h| h.chan_expired).sum::<u64>() + self.ledger.chan_expired;
        i128::from(sent) - i128::from(delivered) - i128::from(expired)
    }

    /// Folds this audit into `d`. Deliberately excludes wall-clock times
    /// and span ids — the only values that legitimately differ between two
    /// runs of the same seed (`workers > 1` executes on real threads; span
    /// ids come from a process-global counter). Everything else — counters,
    /// registry digests, colony maps, dictionary bytes, fault accounting —
    /// must be identical, and therefore is folded.
    pub fn fold_into(&self, d: &mut Digest) {
        d.write_u64(self.tick);
        d.write_u64(self.emits);
        d.write_u64(self.live.len() as u64);
        for h in &self.live {
            d.write_u64(u64::from(h.id.0));
            d.write_u64(h.applied_seq);
            d.write_u64(h.registry_digest);
            d.write_u64(h.handled);
            d.write_u64(h.dead);
            d.write_u64(h.orphans);
            d.write_u64(h.nobee);
            d.write_u64(h.queued);
            d.write_u64(h.chan_sent);
            d.write_u64(h.chan_delivered);
            d.write_u64(h.chan_expired);
            d.write_u64(h.malformed_spans);
            d.write_u64(h.colonies.len() as u64);
            for (bee, colony) in &h.colonies {
                d.write_u64(bee.0);
                d.write_u64(colony.len() as u64);
                for cell in colony {
                    d.write(cell.dict.as_bytes());
                    d.write(&[0]);
                    d.write(cell.key.as_bytes());
                    d.write(&[0]);
                }
            }
            for (bee, dicts) in &h.dicts {
                d.write_u64(bee.0);
                d.write_u64(dicts.len() as u64);
                for (name, entries) in dicts {
                    d.write(name.as_bytes());
                    d.write(&[0]);
                    d.write_u64(entries.len() as u64);
                    for (k, v) in entries {
                        d.write(k.as_bytes());
                        d.write(&[0]);
                        d.write_u64(v.len() as u64);
                        d.write(v);
                    }
                }
            }
        }
        d.write_u64(self.fabric.dropped_app);
        d.write_u64(self.fabric.dropped_raft);
        d.write_u64(self.fabric.dropped_control);
        d.write_u64(self.fabric.duplicated_app);
        d.write_u64(self.fabric.duplicated_raft);
        d.write_u64(self.fabric.duplicated_control);
        d.write_u64(self.fabric.reordered);
        d.write_u64(self.in_flight_app);
        d.write_u64(self.ledger.total());
        d.write_u64(self.ledger.chan_sent);
        d.write_u64(self.ledger.chan_delivered);
        d.write_u64(self.ledger.chan_expired);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_audit(tick: u64) -> ClusterAudit {
        ClusterAudit {
            tick,
            emits: 0,
            live: Vec::new(),
            fabric: FaultStats::default(),
            in_flight_app: 0,
            ledger: CrashLedger::default(),
        }
    }

    fn hive_audit(id: u32) -> HiveAudit {
        HiveAudit {
            id: HiveId(id),
            applied_seq: 0,
            registry_digest: 0,
            snapshot_index: 0,
            snapshot_installs: 0,
            handled: 0,
            dead: 0,
            orphans: 0,
            nobee: 0,
            queued: 0,
            chan_sent: 0,
            chan_delivered: 0,
            chan_expired: 0,
            retransmits: 0,
            dups_suppressed: 0,
            colonies: Vec::new(),
            dicts: Vec::new(),
            malformed_spans: 0,
            malformed_events: 0,
        }
    }

    #[test]
    fn ownership_flags_double_owned_cell() {
        let mut audit = empty_audit(3);
        let cell = Cell::new("d", "k");
        let mut h1 = hive_audit(1);
        h1.colonies = vec![(BeeId(11), vec![cell.clone()])];
        let mut h2 = hive_audit(2);
        h2.colonies = vec![(BeeId(22), vec![cell.clone()])];
        audit.live = vec![h1, h2];
        let v = check_ownership(&audit);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].checker, "ownership");
        assert_eq!(v[0].tick, 3);
    }

    #[test]
    fn ownership_flags_bee_on_two_hives() {
        let mut audit = empty_audit(0);
        let mut h1 = hive_audit(1);
        h1.colonies = vec![(BeeId(7), vec![Cell::new("d", "a")])];
        let mut h2 = hive_audit(2);
        h2.colonies = vec![(BeeId(7), vec![Cell::new("d", "b")])];
        audit.live = vec![h1, h2];
        let v = check_ownership(&audit);
        assert!(v.iter().any(|v| v.detail.contains("active on")));
    }

    #[test]
    fn registry_agreement_only_compares_equal_seq() {
        let mut audit = empty_audit(0);
        let mut h1 = hive_audit(1);
        h1.applied_seq = 5;
        h1.registry_digest = 0xAA;
        let mut h2 = hive_audit(2);
        h2.applied_seq = 6; // lagging/ahead: different prefix, no comparison
        h2.registry_digest = 0xBB;
        audit.live = vec![h1.clone(), h2];
        assert!(check_registry_agreement(&audit).is_empty());
        let mut h3 = hive_audit(3);
        h3.applied_seq = 5;
        h3.registry_digest = 0xCC; // same prefix, different mirror: bug
        audit.live = vec![h1, h3];
        assert_eq!(check_registry_agreement(&audit).len(), 1);
    }

    #[test]
    fn conservation_balances_and_detects_loss() {
        let mut audit = empty_audit(0);
        audit.emits = 10;
        let mut h = hive_audit(1);
        h.handled = 6;
        h.queued = 1;
        h.chan_sent = 5;
        h.chan_delivered = 2; // 3 messages still owned by the channel
        audit.live = vec![h];
        // Fabric faults are masked by the channel and must not unbalance it.
        audit.fabric.dropped_app = 2;
        audit.fabric.duplicated_app = 4;
        audit.in_flight_app = 1;
        assert!(check_conservation(&audit).is_empty());
        audit.emits = 11; // one message now unaccounted for
        let v = check_conservation(&audit);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("missing 1"));
    }

    #[test]
    fn conservation_tolerates_redelivery_after_amnesiac_restart() {
        // A receiver that crashed without durable dedup state gets the
        // unacked message again: both deliveries count, `handled` doubles,
        // and the negative in-transit term balances the books.
        let mut audit = empty_audit(0);
        audit.emits = 1;
        let mut sender = hive_audit(2);
        sender.chan_sent = 1;
        let mut receiver = hive_audit(1);
        receiver.handled = 1; // the re-delivery, after restart
        receiver.chan_delivered = 1;
        audit.live = vec![receiver, sender];
        audit.ledger.handled = 1; // the first delivery, absorbed at crash
        audit.ledger.chan_delivered = 1;
        assert_eq!(audit.in_transit(), -1);
        assert!(check_conservation(&audit).is_empty());
    }

    #[test]
    fn conservation_subtracts_expired_channel_envelopes() {
        // A departed peer's unacked envelopes are dead-lettered by the
        // retiring sender: they leave the in-transit term via `chan_expired`
        // and re-enter the books as `dead`.
        let mut audit = empty_audit(0);
        audit.emits = 4;
        let mut h = hive_audit(1);
        h.handled = 2;
        h.dead = 2; // the retired envelopes
        h.chan_sent = 4;
        h.chan_delivered = 2;
        h.chan_expired = 2;
        audit.live = vec![h];
        assert_eq!(audit.in_transit(), 0);
        assert!(check_conservation(&audit).is_empty());
    }

    #[test]
    fn atomicity_flags_torn_pair() {
        let mut audit = empty_audit(0);
        let mut h = hive_audit(1);
        h.dicts = vec![(
            BeeId(1),
            vec![
                ("left".to_string(), vec![("k".to_string(), vec![2])]),
                ("right".to_string(), vec![("k".to_string(), vec![1])]),
            ],
        )];
        audit.live = vec![h];
        let v = check_atomicity(&audit, "left", "right");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].checker, "atomicity");
    }

    #[test]
    fn events_checker_flags_malformed_journal_entries() {
        let mut audit = empty_audit(9);
        let mut h = hive_audit(4);
        h.malformed_events = 2;
        audit.live = vec![hive_audit(1), h];
        let v = check_events(&audit);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].checker, "events");
        assert_eq!(v[0].tick, 9);
        assert!(v[0].detail.contains("hive 4"));
    }

    #[test]
    fn snapshots_checker_bounds_horizon_by_applied_fence() {
        let mut audit = empty_audit(5);
        let mut ok = hive_audit(1);
        ok.applied_seq = 10;
        ok.snapshot_index = 10; // compacted right up to the fence: legal
        ok.snapshot_installs = 2;
        audit.live = vec![ok];
        assert!(check_snapshots(&audit).is_empty());

        let mut bad = hive_audit(2);
        bad.applied_seq = 4;
        bad.snapshot_index = 7; // truncated past what was applied: a gap
        audit.live.push(bad);
        let v = check_snapshots(&audit);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].checker, "snapshots");
        assert_eq!(v[0].tick, 5);
        assert!(v[0].detail.contains("hive 2"));
    }

    #[test]
    fn snapshot_counters_do_not_perturb_the_digest() {
        // Like malformed_events: recovery-mechanism counters stay out of
        // the fold; the checkers (snapshots, registry agreement) gate on
        // them instead.
        let mut a = Digest::new();
        let mut b = Digest::new();
        let mut audit = empty_audit(1);
        audit.live = vec![hive_audit(1)];
        audit.fold_into(&mut a);
        audit.live[0].snapshot_index = 3;
        audit.live[0].snapshot_installs = 2;
        audit.fold_into(&mut b);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn malformed_events_do_not_perturb_the_digest() {
        // Event volume is timing-sensitive, so the journal's counters stay
        // out of the digest; only the checker gates on them.
        let mut a = Digest::new();
        let mut b = Digest::new();
        let mut audit = empty_audit(1);
        audit.live = vec![hive_audit(1)];
        audit.fold_into(&mut a);
        audit.live[0].malformed_events = 7;
        audit.fold_into(&mut b);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let mut a = Digest::new();
        let mut b = Digest::new();
        empty_audit(1).fold_into(&mut a);
        empty_audit(1).fold_into(&mut b);
        assert_eq!(a.finish(), b.finish());
        let mut c = Digest::new();
        empty_audit(2).fold_into(&mut c);
        assert_ne!(a.finish(), c.finish());
    }
}
