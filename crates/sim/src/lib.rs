#![warn(missing_docs)]

//! `beehive-sim` — a discrete-virtual-time simulator for Beehive clusters.
//!
//! Reproduces the paper's evaluation environment: a cluster of hives on an
//! accounted in-memory fabric ([`beehive_net::MemFabric`]), emulated
//! OpenFlow switches attached to their master hives, tree topologies and
//! fixed-rate flow workloads. Everything runs deterministically against a
//! shared [`beehive_core::SimClock`].

pub mod chaos;
pub mod cluster;
pub mod fleet;
pub mod invariants;
pub mod storage;
pub mod topology;
pub mod workload;

pub use chaos::{
    chaos_app, minimize, run, run_seed, sweep, ChaosConfig, ChaosOp, FailureRepro, FaultKind,
    FaultSchedule, FaultWindow, RunReport, SweepOutcome, CHAOS_APP,
};
pub use cluster::{ClusterConfig, SimCluster};
pub use fleet::SwitchFleet;
pub use invariants::{
    check_all, check_atomicity, check_conservation, check_ownership, check_registry_agreement,
    check_snapshots, check_traces, gather, ClusterAudit, CrashLedger, Digest, HiveAudit, Violation,
};
pub use storage::{DiskOp, FaultHandle, FaultyStorage};
pub use topology::{Level, Link, SwitchNode, Topology};
pub use workload::{generate_flows, FlowSpec, WorkloadConfig};
