//! Disk-fault injection for raft durable storage.
//!
//! [`FaultyStorage`] wraps any [`beehive_raft::Storage`] implementation and
//! fails chosen operations with an injected [`StorageError::Io`] — the
//! simulator's stand-in for a dying disk, a full volume, or a yanked power
//! cable mid-`fsync`. The accompanying [`FaultHandle`] stays with the test
//! harness so faults can be armed while the storage itself is owned (boxed)
//! by the node under test.
//!
//! The tests in this module pin down the two durability contracts the chaos
//! harness relies on:
//!
//! * **Fail-stop, not fail-silent**: the first failed persist latches the
//!   node inert ([`beehive_raft::RaftNode::storage_fault`]); it stops
//!   answering RPCs and refuses proposals rather than acting on state that
//!   never reached the platter.
//! * **Crash-during-compaction loses nothing**: a snapshot save that fails
//!   leaves the log untruncated, so a restart replays the full history and
//!   converges to the exact pre-crash state machine.

use std::sync::Arc;

use beehive_raft::{
    Entry, HardState, LogIndex, PersistedState, SnapshotRecord, Storage, StorageError, Term,
};
use parking_lot::Mutex;

/// Which durable operation an armed fault should strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskOp {
    /// The term/vote write (`save_hard_state`).
    HardState,
    /// The log-suffix rewrite (`save_log`).
    Log,
    /// The compaction snapshot write (`save_snapshot`).
    Snapshot,
    /// Any of the above — first write loses.
    Any,
}

impl DiskOp {
    fn matches(self, op: DiskOp) -> bool {
        self == DiskOp::Any || self == op
    }
}

#[derive(Debug, Default)]
struct FaultState {
    /// Armed fault, if any.
    armed: Option<DiskOp>,
    /// `true` keeps failing every matching op (a dead disk); `false` injects
    /// exactly one failure (a transient error the node must still fail-stop
    /// on — there is no retry that can un-lose an unpersisted vote).
    sticky: bool,
    /// Durable operations attempted through the shim.
    ops: u64,
    /// Failures injected.
    injected: u64,
}

/// Test-side controller for a [`FaultyStorage`] — arm and count faults while
/// the storage lives inside a `RaftNode`.
#[derive(Debug, Clone)]
pub struct FaultHandle {
    state: Arc<Mutex<FaultState>>,
}

impl FaultHandle {
    /// Fails the next matching durable operation, then heals.
    pub fn fail_next(&self, op: DiskOp) {
        let mut st = self.state.lock();
        st.armed = Some(op);
        st.sticky = false;
    }

    /// Fails every matching durable operation from now on (dead disk).
    pub fn fail_forever(&self, op: DiskOp) {
        let mut st = self.state.lock();
        st.armed = Some(op);
        st.sticky = true;
    }

    /// Disarms any pending fault.
    pub fn heal(&self) {
        self.state.lock().armed = None;
    }

    /// Durable operations attempted through the shim so far.
    pub fn ops(&self) -> u64 {
        self.state.lock().ops
    }

    /// Failures injected so far.
    pub fn injected(&self) -> u64 {
        self.state.lock().injected
    }
}

/// A [`Storage`] decorator that injects IO failures on command.
///
/// Reads (`load`) always pass through: boot-time corruption is the record
/// codec's department (see `beehive_raft::FileStorage`); this shim models
/// write-path faults on a disk that was readable at boot.
pub struct FaultyStorage<S: Storage> {
    inner: S,
    state: Arc<Mutex<FaultState>>,
}

impl<S: Storage> FaultyStorage<S> {
    /// Wraps `inner`, returning the storage (give it to the node) and the
    /// handle (keep it to inject faults).
    pub fn new(inner: S) -> (Self, FaultHandle) {
        let state = Arc::new(Mutex::new(FaultState::default()));
        (
            FaultyStorage {
                inner,
                state: state.clone(),
            },
            FaultHandle { state },
        )
    }

    fn intercept(&self, op: DiskOp, name: &'static str) -> Result<(), StorageError> {
        let mut st = self.state.lock();
        st.ops += 1;
        if let Some(armed) = st.armed {
            if armed.matches(op) {
                st.injected += 1;
                if !st.sticky {
                    st.armed = None;
                }
                return Err(StorageError::Io {
                    op: name,
                    detail: "injected disk fault".into(),
                });
            }
        }
        Ok(())
    }
}

impl<S: Storage> Storage for FaultyStorage<S> {
    fn save_hard_state(&mut self, hs: &HardState) -> Result<(), StorageError> {
        self.intercept(DiskOp::HardState, "save hard state")?;
        self.inner.save_hard_state(hs)
    }

    fn save_log(
        &mut self,
        snapshot_index: LogIndex,
        snapshot_term: Term,
        entries: &[Entry],
    ) -> Result<(), StorageError> {
        self.intercept(DiskOp::Log, "save log")?;
        self.inner.save_log(snapshot_index, snapshot_term, entries)
    }

    fn save_snapshot(&mut self, snap: &SnapshotRecord) -> Result<(), StorageError> {
        self.intercept(DiskOp::Snapshot, "save snapshot")?;
        self.inner.save_snapshot(snap)
    }

    fn load(&mut self) -> Result<Option<PersistedState>, StorageError> {
        self.inner.load()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beehive_raft::{Config, KvCounter, RaftNode, SharedMemStorage};

    fn config(threshold: u64) -> Config {
        Config {
            rng_seed: 1,
            snapshot_threshold: threshold,
            ..Config::default()
        }
    }

    /// Ticks a lone voter until it elects itself.
    fn run_until_leader(node: &mut RaftNode<KvCounter>) {
        for _ in 0..200 {
            node.tick();
            if node.is_leader() {
                return;
            }
        }
        panic!("single-node cluster never elected itself");
    }

    fn single_node(threshold: u64) -> (RaftNode<KvCounter>, FaultHandle, SharedMemStorage) {
        let shared = SharedMemStorage::new();
        let (faulty, handle) = FaultyStorage::new(shared.handle());
        let node = RaftNode::new(
            1,
            Vec::new(),
            config(threshold),
            KvCounter::default(),
            Box::new(faulty),
        );
        (node, handle, shared)
    }

    /// Restarts a node from the (now healed) shared storage and re-elects it.
    fn restart(threshold: u64, shared: &SharedMemStorage) -> RaftNode<KvCounter> {
        let mut node = RaftNode::new(
            1,
            Vec::new(),
            config(threshold),
            KvCounter::default(),
            Box::new(shared.handle()),
        );
        run_until_leader(&mut node);
        node
    }

    #[test]
    fn an_injected_persist_failure_latches_the_node_inert() {
        let (mut node, handle, shared) = single_node(0);
        run_until_leader(&mut node);
        node.propose(vec![5]).unwrap();
        assert_eq!(node.state_machine().total, 5);
        assert!(handle.ops() > 0, "writes flow through the shim");

        handle.fail_next(DiskOp::Log);
        // The proposal itself may return a token (the append happened in
        // memory) but the persist fails — the node must latch the fault...
        let _ = node.propose(vec![7]);
        let fault = node.storage_fault().expect("fault must latch");
        assert!(matches!(fault, StorageError::Io { .. }), "{fault}");
        assert_eq!(handle.injected(), 1);

        // ...and go inert: no messages out of ticks, proposals refused.
        for _ in 0..50 {
            assert!(node.tick().is_empty(), "a latched node emits nothing");
        }
        assert!(
            node.propose(vec![9]).is_err(),
            "a latched node refuses work"
        );

        // Durable state predating the fault is intact: a restart replays it
        // and lands exactly where the last *successful* persist left off.
        let restored = restart(0, &shared);
        assert_eq!(restored.state_machine().total, 5);
        assert_eq!(
            restored.storage_fault(),
            None,
            "the healed disk restarts clean"
        );
    }

    #[test]
    fn a_dead_disk_fails_the_node_at_first_write() {
        let (mut node, handle, _shared) = single_node(0);
        handle.fail_forever(DiskOp::Any);
        // The self-vote of the first election is the first durable write —
        // the node must never become leader on an unpersisted vote.
        for _ in 0..200 {
            node.tick();
        }
        assert!(!node.is_leader());
        assert!(node.storage_fault().is_some());
        assert!(handle.injected() >= 1);
    }

    #[test]
    fn a_snapshot_save_failure_keeps_the_log_for_full_replay() {
        const THRESHOLD: u64 = 3;
        let (mut node, handle, shared) = single_node(THRESHOLD);
        run_until_leader(&mut node);

        // Arm the fault, then push past the compaction threshold: the
        // snapshot write fails mid-compaction.
        handle.fail_next(DiskOp::Snapshot);
        let mut expected = 0u64;
        for b in 1..=(THRESHOLD as u8 + 2) {
            expected += b as u64;
            let _ = node.propose(vec![b]);
            if node.storage_fault().is_some() {
                break;
            }
        }
        assert!(
            node.storage_fault().is_some(),
            "the failed snapshot save must latch the node"
        );
        // The log was NOT truncated behind a snapshot that never landed.
        assert_eq!(node.snapshot_index(), 0);
        assert_eq!(node.snapshots_taken(), 0);

        // Restart from the durable log (every entry persisted fine): the
        // replayed state machine equals the pre-crash one, and compaction
        // now succeeds against the healed disk.
        let restored = restart(THRESHOLD, &shared);
        assert_eq!(
            restored.state_machine().total,
            expected,
            "full log replay reproduces the pre-crash state"
        );
        assert!(
            restored.snapshot_index() > 0,
            "compaction completes once the disk heals"
        );
        assert!(restored.snapshots_taken() > 0);
    }
}
