//! Network topologies. The paper's evaluation uses "400 switches in a simple
//! tree topology"; [`Topology::tree`] builds k-ary trees of any size, and the
//! structure also serves the routing and discovery applications (BFS paths).

use std::collections::{BTreeMap, HashMap, VecDeque};

use beehive_core::HiveId;
use serde::{Deserialize, Serialize};

/// A switch's role in the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Level {
    /// Tree root(s).
    Core,
    /// Interior switches.
    Aggregation,
    /// Leaves (hosts hang off these).
    Edge,
}

/// One switch in the topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SwitchNode {
    /// Datapath id (1-based).
    pub dpid: u64,
    /// Number of ports.
    pub ports: u16,
    /// Role.
    pub level: Level,
}

/// An undirected link between two (switch, port) endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// One endpoint.
    pub a: (u64, u16),
    /// The other endpoint.
    pub b: (u64, u16),
}

/// A switch-level network topology.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    /// All switches, ordered by dpid.
    pub switches: Vec<SwitchNode>,
    /// All links.
    pub links: Vec<Link>,
}

impl Topology {
    /// Builds a k-ary tree with `levels` levels (root = level 0) and `fanout`
    /// children per switch. `levels = 1` is a single switch.
    pub fn tree(levels: u32, fanout: u32) -> Topology {
        assert!(levels >= 1 && fanout >= 1);
        let mut switches = Vec::new();
        let mut links = Vec::new();
        let mut next_dpid = 1u64;
        // Build level by level; remember each level's dpids.
        let mut prev_level: Vec<u64> = Vec::new();
        for level in 0..levels {
            let count = if level == 0 {
                1
            } else {
                prev_level.len() as u64 * fanout as u64
            };
            let role = if level == 0 {
                Level::Core
            } else if level == levels - 1 {
                Level::Edge
            } else {
                Level::Aggregation
            };
            let mut this_level = Vec::with_capacity(count as usize);
            for i in 0..count {
                let dpid = next_dpid;
                next_dpid += 1;
                // Ports: fanout downlinks + 1 uplink + 2 host ports on edges.
                let ports = (fanout as u16 + 1).max(4);
                switches.push(SwitchNode {
                    dpid,
                    ports,
                    level: role,
                });
                if level > 0 {
                    let parent = prev_level[(i / fanout as u64) as usize];
                    let parent_port = (i % fanout as u64) as u16 + 2; // port 1 = uplink
                    links.push(Link {
                        a: (parent, parent_port),
                        b: (dpid, 1),
                    });
                }
                this_level.push(dpid);
            }
            prev_level = this_level;
        }
        Topology { switches, links }
    }

    /// Builds a tree with *approximately* `n` switches by picking a fanout.
    /// The result has at least `n` switches.
    pub fn tree_with_about(n: usize, fanout: u32) -> Topology {
        let mut levels = 1;
        let mut total: u64 = 1;
        let mut level_count: u64 = 1;
        while (total as usize) < n {
            levels += 1;
            level_count *= fanout as u64;
            total += level_count;
        }
        Topology::tree(levels, fanout)
    }

    /// Number of switches.
    pub fn len(&self) -> usize {
        self.switches.len()
    }

    /// Whether the topology is empty.
    pub fn is_empty(&self) -> bool {
        self.switches.is_empty()
    }

    /// All datapath ids.
    pub fn dpids(&self) -> Vec<u64> {
        self.switches.iter().map(|s| s.dpid).collect()
    }

    /// Edge-level switches (where hosts attach).
    pub fn edges(&self) -> Vec<u64> {
        self.switches
            .iter()
            .filter(|s| s.level == Level::Edge)
            .map(|s| s.dpid)
            .collect()
    }

    /// The adjacency map: switch → (neighbor, local port).
    pub fn adjacency(&self) -> BTreeMap<u64, Vec<(u64, u16)>> {
        let mut adj: BTreeMap<u64, Vec<(u64, u16)>> = BTreeMap::new();
        for l in &self.links {
            adj.entry(l.a.0).or_default().push((l.b.0, l.a.1));
            adj.entry(l.b.0).or_default().push((l.a.0, l.b.1));
        }
        adj
    }

    /// BFS shortest path from `src` to `dst`, as a list of dpids (inclusive).
    pub fn path(&self, src: u64, dst: u64) -> Option<Vec<u64>> {
        if src == dst {
            return Some(vec![src]);
        }
        let adj = self.adjacency();
        let mut prev: HashMap<u64, u64> = HashMap::new();
        let mut queue = VecDeque::from([src]);
        while let Some(cur) = queue.pop_front() {
            for &(next, _) in adj.get(&cur).into_iter().flatten() {
                if next != src && !prev.contains_key(&next) {
                    prev.insert(next, cur);
                    if next == dst {
                        let mut path = vec![dst];
                        let mut at = dst;
                        while let Some(&p) = prev.get(&at) {
                            path.push(p);
                            at = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// Round-robin assignment of switches to master hives (the paper's
    /// "querying a switch on its master controller").
    pub fn assign_masters(&self, hives: &[HiveId]) -> BTreeMap<u64, HiveId> {
        assert!(!hives.is_empty());
        self.switches
            .iter()
            .enumerate()
            .map(|(i, s)| (s.dpid, hives[i % hives.len()]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_switch_tree() {
        let t = Topology::tree(1, 4);
        assert_eq!(t.len(), 1);
        assert!(t.links.is_empty());
        assert_eq!(t.switches[0].level, Level::Core);
    }

    #[test]
    fn three_level_binary_tree() {
        let t = Topology::tree(3, 2);
        // 1 + 2 + 4 switches.
        assert_eq!(t.len(), 7);
        assert_eq!(t.links.len(), 6);
        assert_eq!(t.edges().len(), 4);
    }

    #[test]
    fn about_400_switches() {
        let t = Topology::tree_with_about(400, 7);
        assert!(t.len() >= 400, "got {}", t.len());
        // 1 + 7 + 49 + 343 = 400 exactly with fanout 7.
        assert_eq!(t.len(), 400);
    }

    #[test]
    fn paths_exist_between_leaves() {
        let t = Topology::tree(3, 2);
        let edges = t.edges();
        let p = t.path(edges[0], edges[3]).unwrap();
        assert_eq!(p.first(), Some(&edges[0]));
        assert_eq!(p.last(), Some(&edges[3]));
        // Through the root for leaves in different subtrees: 5 hops.
        assert_eq!(p.len(), 5);
        // Same switch is a single-node path.
        assert_eq!(t.path(edges[0], edges[0]).unwrap(), vec![edges[0]]);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let t = Topology::tree(3, 2);
        let adj = t.adjacency();
        for l in &t.links {
            assert!(adj[&l.a.0].iter().any(|&(n, _)| n == l.b.0));
            assert!(adj[&l.b.0].iter().any(|&(n, _)| n == l.a.0));
        }
    }

    #[test]
    fn master_assignment_is_balanced() {
        let t = Topology::tree_with_about(400, 7);
        let hives: Vec<HiveId> = (1..=40).map(HiveId).collect();
        let masters = t.assign_masters(&hives);
        let mut counts: BTreeMap<HiveId, usize> = BTreeMap::new();
        for h in masters.values() {
            *counts.entry(*h).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 40);
        assert!(counts.values().all(|&c| c == 10), "400/40 = 10 each");
    }
}
