//! Workload generation: the paper's "100 fixed-rate flows from each switch,
//! 10% of these flows have a rate more than a user-defined re-routing
//! threshold (δ)".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One fixed-rate flow pinned to a switch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// The switch carrying the flow.
    pub switch: u64,
    /// Source IPv4 (synthetic).
    pub nw_src: u32,
    /// Destination IPv4 (synthetic).
    pub nw_dst: u32,
    /// Bytes per second.
    pub rate_bytes_per_sec: u64,
    /// Whether the flow exceeds the re-routing threshold δ.
    pub elephant: bool,
}

impl FlowSpec {
    /// The flow's header as an exact OpenFlow match (for table lookups and
    /// counter accounting).
    pub fn header(&self) -> beehive_openflow::Match {
        beehive_openflow::Match {
            wildcards: 0,
            nw_src: self.nw_src,
            nw_dst: self.nw_dst,
            dl_type: 0x0800,
            ..Default::default()
        }
    }

    /// The wildcarded match a controller would install for this flow.
    pub fn rule(&self) -> beehive_openflow::Match {
        beehive_openflow::Match::nw_pair(self.nw_src, self.nw_dst)
    }
}

/// Parameters for [`generate_flows`].
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Flows per switch (paper: 100).
    pub flows_per_switch: usize,
    /// Fraction of flows above δ (paper: 0.1).
    pub elephant_fraction: f64,
    /// Rate of a mouse flow, B/s.
    pub mouse_rate: u64,
    /// Rate of an elephant flow, B/s (must exceed the app's δ).
    pub elephant_rate: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            flows_per_switch: 100,
            elephant_fraction: 0.1,
            mouse_rate: 1_000,
            elephant_rate: 100_000,
            seed: 0xF10E5,
        }
    }
}

/// Generates the per-switch flow population. Deterministic in `cfg.seed`;
/// exactly `⌈flows_per_switch × elephant_fraction⌉` elephants per switch.
pub fn generate_flows(switches: &[u64], cfg: &WorkloadConfig) -> Vec<FlowSpec> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let elephants_per_switch =
        ((cfg.flows_per_switch as f64) * cfg.elephant_fraction).ceil() as usize;
    let mut flows = Vec::with_capacity(switches.len() * cfg.flows_per_switch);
    for &sw in switches {
        for i in 0..cfg.flows_per_switch {
            let elephant = i < elephants_per_switch;
            // Synthetic, unique per (switch, flow): 10.x.y.z style.
            let nw_src = 0x0A00_0000 | ((sw as u32 & 0xFFF) << 12) | (i as u32 & 0xFFF);
            let nw_dst = 0x0B00_0000 | rng.gen_range(0..0x00FF_FFFF);
            let jitter = rng.gen_range(90..=110);
            let base = if elephant {
                cfg.elephant_rate
            } else {
                cfg.mouse_rate
            };
            flows.push(FlowSpec {
                switch: sw,
                nw_src,
                nw_dst,
                rate_bytes_per_sec: base * jitter / 100,
                elephant,
            });
        }
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_population_shape() {
        let switches: Vec<u64> = (1..=10).collect();
        let flows = generate_flows(&switches, &WorkloadConfig::default());
        assert_eq!(flows.len(), 1000);
        let elephants = flows.iter().filter(|f| f.elephant).count();
        assert_eq!(elephants, 100, "10% elephants");
        // Each switch carries exactly 100 flows.
        for sw in &switches {
            assert_eq!(flows.iter().filter(|f| f.switch == *sw).count(), 100);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let switches = vec![1, 2];
        let a = generate_flows(&switches, &WorkloadConfig::default());
        let b = generate_flows(&switches, &WorkloadConfig::default());
        assert_eq!(a, b);
        let c = generate_flows(
            &switches,
            &WorkloadConfig {
                seed: 99,
                ..Default::default()
            },
        );
        assert_ne!(a, c);
    }

    #[test]
    fn elephant_rates_exceed_mouse_rates() {
        let flows = generate_flows(&[1], &WorkloadConfig::default());
        let min_elephant = flows
            .iter()
            .filter(|f| f.elephant)
            .map(|f| f.rate_bytes_per_sec)
            .min()
            .unwrap();
        let max_mouse = flows
            .iter()
            .filter(|f| !f.elephant)
            .map(|f| f.rate_bytes_per_sec)
            .max()
            .unwrap();
        assert!(min_elephant > max_mouse);
    }

    #[test]
    fn headers_are_unique_per_flow() {
        let flows = generate_flows(&[1, 2], &WorkloadConfig::default());
        let mut seen = std::collections::HashSet::new();
        for f in &flows {
            assert!(seen.insert((f.switch, f.nw_src)), "duplicate flow source");
        }
    }

    #[test]
    fn rule_covers_header() {
        let flows = generate_flows(&[1], &WorkloadConfig::default());
        for f in flows.iter().take(10) {
            assert!(f.rule().covers(&f.header()));
        }
    }
}
