//! Property tests for the simulator substrate: tree topologies are
//! well-formed and connected, BFS paths are valid walks, master assignment
//! is total and balanced, and workload generation matches its spec.

use beehive_core::HiveId;
use beehive_sim::{generate_flows, Topology, WorkloadConfig};
use proptest::prelude::*;

proptest! {
    #[test]
    fn trees_are_well_formed(levels in 1u32..5, fanout in 1u32..5) {
        let t = Topology::tree(levels, fanout);
        // Expected size: geometric series.
        let mut expect = 0u64;
        let mut level_count = 1u64;
        for _ in 0..levels {
            expect += level_count;
            level_count *= fanout as u64;
        }
        prop_assert_eq!(t.len() as u64, expect);
        // A tree has n-1 links.
        prop_assert_eq!(t.links.len(), t.len() - 1);
        // Dpids are 1..=n with no duplicates.
        let mut dpids = t.dpids();
        dpids.sort_unstable();
        prop_assert_eq!(dpids, (1..=t.len() as u64).collect::<Vec<_>>());
    }

    #[test]
    fn trees_are_connected_and_paths_valid(
        levels in 2u32..5,
        fanout in 1u32..4,
        seed in any::<u64>(),
    ) {
        let t = Topology::tree(levels, fanout);
        let adj = t.adjacency();
        let dpids = t.dpids();
        // Pick a pseudo-random pair.
        let a = dpids[(seed as usize) % dpids.len()];
        let b = dpids[(seed as usize / 7 + 3) % dpids.len()];
        let path = t.path(a, b).expect("trees are connected");
        prop_assert_eq!(*path.first().unwrap(), a);
        prop_assert_eq!(*path.last().unwrap(), b);
        // Every hop is a real edge.
        for w in path.windows(2) {
            prop_assert!(
                adj[&w[0]].iter().any(|&(n, _)| n == w[1]),
                "hop {}->{} is not a link",
                w[0],
                w[1]
            );
        }
        // No vertex repeats (shortest path in a tree is simple).
        let set: std::collections::BTreeSet<_> = path.iter().collect();
        prop_assert_eq!(set.len(), path.len());
    }

    #[test]
    fn bfs_path_length_is_minimal_in_trees(levels in 2u32..4, fanout in 2u32..4) {
        // In a tree the path is unique, so BFS must find exactly it; check
        // symmetric lengths.
        let t = Topology::tree(levels, fanout);
        let edges = t.edges();
        for (i, &a) in edges.iter().enumerate().take(4) {
            let b = edges[(i + 1) % edges.len()];
            let ab = t.path(a, b).unwrap().len();
            let ba = t.path(b, a).unwrap().len();
            prop_assert_eq!(ab, ba);
        }
    }

    #[test]
    fn master_assignment_is_total_and_balanced(
        levels in 1u32..5,
        fanout in 1u32..4,
        hives in 1u32..10,
    ) {
        let t = Topology::tree(levels, fanout);
        let hive_ids: Vec<HiveId> = (1..=hives).map(HiveId).collect();
        let masters = t.assign_masters(&hive_ids);
        prop_assert_eq!(masters.len(), t.len(), "every switch has a master");
        let mut counts = std::collections::BTreeMap::new();
        for h in masters.values() {
            *counts.entry(h.0).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap_or(0);
        let min = counts.values().copied().min().unwrap_or(0);
        prop_assert!(max - min <= 1, "round robin is balanced: {:?}", counts);
    }

    #[test]
    fn workload_matches_spec(
        switches in 1usize..20,
        per_switch in 1usize..50,
        elephant_pct in 0u8..=100,
        seed in any::<u64>(),
    ) {
        let dpids: Vec<u64> = (1..=switches as u64).collect();
        let cfg = WorkloadConfig {
            flows_per_switch: per_switch,
            elephant_fraction: elephant_pct as f64 / 100.0,
            seed,
            ..Default::default()
        };
        let flows = generate_flows(&dpids, &cfg);
        prop_assert_eq!(flows.len(), switches * per_switch);
        let expected_elephants =
            ((per_switch as f64) * (elephant_pct as f64 / 100.0)).ceil() as usize;
        for d in &dpids {
            let mine: Vec<_> = flows.iter().filter(|f| f.switch == *d).collect();
            prop_assert_eq!(mine.len(), per_switch);
            let elephants = mine.iter().filter(|f| f.elephant).count();
            prop_assert_eq!(elephants, expected_elephants.min(per_switch));
        }
        // Rules always cover their own headers.
        for f in flows.iter().take(20) {
            prop_assert!(f.rule().covers(&f.header()));
        }
    }
}
