//! Deserializer: Beehive wire bytes → serde data model.

use serde::de::{self, DeserializeSeed, Visitor};

use crate::error::{Error, Result};
use crate::varint::decode_varint;

/// Deserializes a value of type `T` from `input`, rejecting trailing bytes.
pub fn from_slice<'de, T: de::Deserialize<'de>>(input: &'de [u8]) -> Result<T> {
    let mut de = Deserializer::new(input);
    let value = T::deserialize(&mut de)?;
    if !de.input.is_empty() {
        return Err(Error::TrailingBytes(de.input.len()));
    }
    Ok(value)
}

/// The wire-format deserializer over a borrowed byte slice.
pub struct Deserializer<'de> {
    input: &'de [u8],
}

impl<'de> Deserializer<'de> {
    /// Creates a deserializer reading from `input`.
    pub fn new(input: &'de [u8]) -> Self {
        Deserializer { input }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len()
    }

    fn take(&mut self, n: usize) -> Result<&'de [u8]> {
        if self.input.len() < n {
            return Err(Error::Eof);
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    fn take_byte(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn take_len(&mut self) -> Result<usize> {
        let (v, used) = decode_varint(self.input)?;
        self.input = &self.input[used..];
        usize::try_from(v).map_err(|_| Error::LengthOverflow(v))
    }

    fn take_variant(&mut self) -> Result<u32> {
        let (v, used) = decode_varint(self.input)?;
        self.input = &self.input[used..];
        u32::try_from(v).map_err(|_| Error::VariantOverflow(v))
    }
}

macro_rules! de_int {
    ($name:ident, $visit:ident, $ty:ty) => {
        fn $name<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
            const N: usize = std::mem::size_of::<$ty>();
            let bytes = self.take(N)?;
            let mut arr = [0u8; N];
            arr.copy_from_slice(bytes);
            visitor.$visit(<$ty>::from_le_bytes(arr))
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Deserializer<'de> {
    type Error = Error;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(Error::NotSelfDescribing)
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(Error::NotSelfDescribing)
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.take_byte()? {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            b => Err(Error::InvalidBool(b)),
        }
    }

    de_int!(deserialize_i8, visit_i8, i8);
    de_int!(deserialize_i16, visit_i16, i16);
    de_int!(deserialize_i32, visit_i32, i32);
    de_int!(deserialize_i64, visit_i64, i64);
    de_int!(deserialize_i128, visit_i128, i128);
    de_int!(deserialize_u8, visit_u8, u8);
    de_int!(deserialize_u16, visit_u16, u16);
    de_int!(deserialize_u32, visit_u32, u32);
    de_int!(deserialize_u64, visit_u64, u64);
    de_int!(deserialize_u128, visit_u128, u128);
    de_int!(deserialize_f32, visit_f32, f32);
    de_int!(deserialize_f64, visit_f64, f64);

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let bytes = self.take(4)?;
        let scalar = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        let c = char::from_u32(scalar).ok_or(Error::InvalidChar(scalar))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.take_len()?;
        let bytes = self.take(len)?;
        let s = std::str::from_utf8(bytes).map_err(|_| Error::InvalidUtf8)?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.take_len()?;
        let bytes = self.take(len)?;
        visitor.visit_borrowed_bytes(bytes)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.take_byte()? {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            b => Err(Error::InvalidOptionTag(b)),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.take_len()?;
        visitor.visit_seq(CountedAccess {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        visitor.visit_seq(CountedAccess {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_seq(CountedAccess {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.take_len()?;
        visitor.visit_map(CountedAccess {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_seq(CountedAccess {
            de: self,
            remaining: fields.len(),
        })
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(Error::NotSelfDescribing)
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct CountedAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
    remaining: usize,
}

impl<'de> de::SeqAccess<'de> for CountedAccess<'_, 'de> {
    type Error = Error;

    fn next_element_seed<T: DeserializeSeed<'de>>(&mut self, seed: T) -> Result<Option<T::Value>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'de> de::MapAccess<'de> for CountedAccess<'_, 'de> {
    type Error = Error;

    fn next_key_seed<K: DeserializeSeed<'de>>(&mut self, seed: K) -> Result<Option<K::Value>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
}

impl<'de> de::EnumAccess<'de> for EnumAccess<'_, 'de> {
    type Error = Error;
    type Variant = Self;

    fn variant_seed<V: DeserializeSeed<'de>>(self, seed: V) -> Result<(V::Value, Self)> {
        let index = self.de.take_variant()?;
        let value = seed.deserialize(de::value::U32Deserializer::<Error>::new(index))?;
        Ok((value, self))
    }
}

impl<'de> de::VariantAccess<'de> for EnumAccess<'_, 'de> {
    type Error = Error;

    fn unit_variant(self) -> Result<()> {
        Ok(())
    }

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value> {
        seed.deserialize(&mut *self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        visitor.visit_seq(CountedAccess {
            de: self.de,
            remaining: len,
        })
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_seq(CountedAccess {
            de: self.de,
            remaining: fields.len(),
        })
    }
}
