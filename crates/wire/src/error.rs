//! Error type shared by the serializer and deserializer.

use std::fmt;

/// Result alias for wire-format operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while encoding or decoding the Beehive wire format.
#[derive(Debug)]
pub enum Error {
    /// The input ended before the value was fully decoded.
    Eof,
    /// Bytes remained after the value was fully decoded.
    TrailingBytes(usize),
    /// A boolean byte was neither 0 nor 1.
    InvalidBool(u8),
    /// An `Option` tag byte was neither 0 nor 1.
    InvalidOptionTag(u8),
    /// A `char` was encoded as an invalid Unicode scalar value.
    InvalidChar(u32),
    /// A string's bytes were not valid UTF-8.
    InvalidUtf8,
    /// A varint did not terminate within 10 bytes.
    VarintOverflow,
    /// A decoded length does not fit in `usize`.
    LengthOverflow(u64),
    /// An enum variant index exceeded `u32::MAX`.
    VariantOverflow(u64),
    /// `deserialize_any` / `deserialize_ignored_any` was requested; the format
    /// is not self-describing so this cannot be supported.
    NotSelfDescribing,
    /// An I/O error from the underlying writer.
    Io(std::io::Error),
    /// A custom error raised by a `Serialize`/`Deserialize` impl.
    Custom(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Eof => write!(f, "unexpected end of input"),
            Error::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            Error::InvalidBool(b) => write!(f, "invalid bool byte {b:#x}"),
            Error::InvalidOptionTag(b) => write!(f, "invalid option tag {b:#x}"),
            Error::InvalidChar(c) => write!(f, "invalid char scalar {c:#x}"),
            Error::InvalidUtf8 => write!(f, "string is not valid UTF-8"),
            Error::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            Error::LengthOverflow(n) => write!(f, "length {n} does not fit in usize"),
            Error::VariantOverflow(n) => write!(f, "variant index {n} exceeds u32"),
            Error::NotSelfDescribing => {
                write!(
                    f,
                    "beehive-wire is not self-describing; deserialize_any unsupported"
                )
            }
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Custom(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::Custom(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::Custom(msg.to_string())
    }
}
