#![warn(missing_docs)]

//! `beehive-wire` — the compact binary serialization format used throughout
//! Beehive for inter-hive framing, cell snapshots, and Raft log persistence.
//!
//! The format is schema-less and non-self-describing (like bincode): the
//! reader must know the type it is decoding. Encoding rules:
//!
//! * fixed-width integers and floats are little-endian;
//! * `usize` lengths (sequences, maps, strings, bytes) are LEB128 varints;
//! * enum variants are encoded by their `u32` variant index as a varint;
//! * `Option` is a one-byte tag (0 = `None`, 1 = `Some`) followed by the value;
//! * structs and tuples are field concatenations with no framing.
//!
//! The format guarantees round-tripping for every type in the serde data
//! model except `deserialize_any` (unsupported by design, as in bincode).
//!
//! # Example
//!
//! ```
//! use serde::{Serialize, Deserialize};
//!
//! #[derive(Serialize, Deserialize, PartialEq, Debug)]
//! struct FlowStat { switch: u64, packets: u64, bytes: u64 }
//!
//! let stat = FlowStat { switch: 7, packets: 1000, bytes: 64_000 };
//! let buf = beehive_wire::to_vec(&stat).unwrap();
//! let back: FlowStat = beehive_wire::from_slice(&buf).unwrap();
//! assert_eq!(stat, back);
//! ```

mod de;
mod error;
pub mod record;
mod ser;
mod varint;

pub use de::{from_slice, Deserializer};
pub use error::{Error, Result};
pub use ser::{to_vec, to_writer, Serializer};
pub use varint::{decode_varint, encode_varint, varint_len};

/// Serializes a value and returns the encoded byte length. Used for
/// bandwidth accounting of messages that are delivered locally. Note: this
/// performs a full serialization pass (the serializer is buffer-backed), so
/// callers on hot paths should treat it as costing one `to_vec`.
pub fn encoded_len<T: serde::Serialize + ?Sized>(value: &T) -> Result<usize> {
    Ok(to_vec(value)?.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn roundtrip<T>(v: &T) -> T
    where
        T: Serialize + for<'de> Deserialize<'de>,
    {
        let buf = to_vec(v).expect("serialize");
        from_slice(&buf).expect("deserialize")
    }

    #[test]
    fn primitives_roundtrip() {
        assert!(roundtrip(&true));
        assert!(!roundtrip(&false));
        assert_eq!(roundtrip(&42u8), 42u8);
        assert_eq!(roundtrip(&-7i8), -7i8);
        assert_eq!(roundtrip(&0xBEEFu16), 0xBEEFu16);
        assert_eq!(roundtrip(&-30_000i16), -30_000i16);
        assert_eq!(roundtrip(&0xDEAD_BEEFu32), 0xDEAD_BEEFu32);
        assert_eq!(roundtrip(&i32::MIN), i32::MIN);
        assert_eq!(roundtrip(&u64::MAX), u64::MAX);
        assert_eq!(roundtrip(&i64::MIN), i64::MIN);
        assert_eq!(roundtrip(&u128::MAX), u128::MAX);
        assert_eq!(roundtrip(&i128::MIN), i128::MIN);
        assert_eq!(roundtrip(&3.25f32), 3.25f32);
        assert_eq!(roundtrip(&-1234.5e300f64), -1234.5e300f64);
        assert_eq!(roundtrip(&'🐝'), '🐝');
    }

    #[test]
    fn strings_and_bytes_roundtrip() {
        assert_eq!(roundtrip(&String::new()), String::new());
        assert_eq!(roundtrip(&"beehive".to_string()), "beehive");
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(roundtrip(&bytes), bytes);
    }

    #[test]
    fn option_roundtrip() {
        assert_eq!(roundtrip(&Some(5u32)), Some(5u32));
        assert_eq!(roundtrip(&None::<u32>), None);
        assert_eq!(
            roundtrip(&Some(Some("x".to_string()))),
            Some(Some("x".to_string()))
        );
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u64, 2, 3, u64::MAX];
        assert_eq!(roundtrip(&v), v);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), vec![1u8, 2]);
        m.insert("bb".to_string(), vec![]);
        assert_eq!(roundtrip(&m), m);
        let t = (1u8, "two".to_string(), 3.0f64);
        assert_eq!(roundtrip(&t), t);
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
    enum TestEnum {
        Unit,
        NewType(u32),
        Tuple(u8, String),
        Struct { x: i64, y: Option<bool> },
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Nested {
        name: String,
        items: Vec<TestEnum>,
        inner: Option<Box<Nested>>,
    }

    #[test]
    fn enums_roundtrip() {
        for e in [
            TestEnum::Unit,
            TestEnum::NewType(9),
            TestEnum::Tuple(1, "t".into()),
            TestEnum::Struct {
                x: -5,
                y: Some(true),
            },
            TestEnum::Struct { x: 0, y: None },
        ] {
            assert_eq!(roundtrip(&e), e);
        }
    }

    #[test]
    fn nested_struct_roundtrip() {
        let n = Nested {
            name: "root".into(),
            items: vec![TestEnum::Unit, TestEnum::NewType(1)],
            inner: Some(Box::new(Nested {
                name: "child".into(),
                items: vec![],
                inner: None,
            })),
        };
        assert_eq!(roundtrip(&n), n);
    }

    #[test]
    fn unit_types_roundtrip() {
        #[derive(Serialize, Deserialize, PartialEq, Debug)]
        struct UnitS;
        #[derive(Serialize, Deserialize, PartialEq, Debug)]
        struct NewT(u16);
        assert_eq!(roundtrip(&()), ());
        assert_eq!(roundtrip(&UnitS), UnitS);
        assert_eq!(roundtrip(&NewT(77)), NewT(77));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = to_vec(&5u32).unwrap();
        buf.push(0);
        let err = from_slice::<u32>(&buf).unwrap_err();
        assert!(matches!(err, Error::TrailingBytes(_)));
    }

    #[test]
    fn truncated_input_rejected() {
        let buf = to_vec(&"hello".to_string()).unwrap();
        let err = from_slice::<String>(&buf[..buf.len() - 1]).unwrap_err();
        assert!(matches!(err, Error::Eof));
    }

    #[test]
    fn invalid_bool_rejected() {
        let err = from_slice::<bool>(&[2]).unwrap_err();
        assert!(matches!(err, Error::InvalidBool(2)));
    }

    #[test]
    fn invalid_utf8_rejected() {
        // length 2, bytes [0xFF, 0xFF]
        let err = from_slice::<String>(&[2, 0xFF, 0xFF]).unwrap_err();
        assert!(matches!(err, Error::InvalidUtf8));
    }

    #[test]
    fn invalid_option_tag_rejected() {
        let err = from_slice::<Option<u8>>(&[9, 1]).unwrap_err();
        assert!(matches!(err, Error::InvalidOptionTag(9)));
    }

    #[test]
    fn encoded_len_matches_to_vec() {
        let n = Nested {
            name: "abc".into(),
            items: vec![TestEnum::Tuple(3, "xyz".into())],
            inner: None,
        };
        assert_eq!(encoded_len(&n).unwrap(), to_vec(&n).unwrap().len());
    }

    #[test]
    fn length_prefix_is_varint() {
        // a 300-byte string: prefix must be 2 varint bytes (300 = 0xAC 0x02)
        let s = "x".repeat(300);
        let buf = to_vec(&s).unwrap();
        assert_eq!(buf.len(), 302);
        assert_eq!(&buf[..2], &[0xAC, 0x02]);
    }

    #[test]
    fn oversized_length_rejected() {
        // claims a u64::MAX-length string
        let mut buf = Vec::new();
        encode_varint(u64::MAX, &mut buf);
        let err = from_slice::<String>(&buf).unwrap_err();
        assert!(matches!(err, Error::Eof | Error::LengthOverflow(_)));
    }

    #[test]
    fn char_rejects_invalid_scalar() {
        // 0xD800 is a surrogate, not a valid char
        let buf = to_vec(&0xD800u32).unwrap();
        let err = from_slice::<char>(&buf).unwrap_err();
        assert!(matches!(err, Error::InvalidChar(0xD800)));
    }

    #[test]
    fn map_of_struct_values() {
        #[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
        struct V {
            a: u8,
            b: Vec<String>,
        }
        let mut m = BTreeMap::new();
        m.insert(
            1u64,
            V {
                a: 1,
                b: vec!["p".into()],
            },
        );
        m.insert(2u64, V { a: 2, b: vec![] });
        assert_eq!(roundtrip(&m), m);
    }
}
