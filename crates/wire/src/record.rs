//! Checksummed record framing for durable journals.
//!
//! Every append-only or whole-state file Beehive persists (the raft
//! registry state, the reliable-channel outbox journal) frames its payloads
//! as:
//!
//! ```text
//! [u32 LE payload length][u64 LE FNV-1a checksum of payload][payload]
//! ```
//!
//! The checksum turns "trust the length prefix" recovery into a verifiable
//! scan with three distinguishable outcomes, which is the whole durability
//! contract (DESIGN.md §3.15):
//!
//! * **clean end** — every record verified, nothing lost;
//! * **torn tail** — the *final* record is incomplete or fails its
//!   checksum: a crash mid-append. The valid prefix is recovered and the
//!   tail is reported so the caller can truncate it and count the loss;
//! * **interior corruption** — a record that verifies as *complete* (its
//!   declared length fits and more bytes follow) fails its checksum: a
//!   flipped bit, not a torn write. [`scan_records`] fails loudly instead
//!   of resynchronizing, because guessing a frame boundary after silent
//!   corruption is how replicas diverge.
//!
//! A corrupted length prefix can never over-read: a declared length that
//! runs past the buffer is classified as a torn tail and the scan stops at
//! the last verified record (the longest valid prefix).

use std::fmt;

/// Bytes of framing before each payload: `u32` length + `u64` checksum.
pub const RECORD_HEADER_LEN: usize = 12;

/// FNV-1a 64-bit hash — the same dependency-free checksum the chaos digest
/// uses; byte-stable across platforms.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Appends one framed record (`len`, `checksum`, `payload`) to `out`.
pub fn encode_record(payload: &[u8], out: &mut Vec<u8>) {
    out.reserve(RECORD_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// One framed record as a standalone buffer.
pub fn record_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    encode_record(payload, &mut out);
    out
}

/// A torn tail discarded by [`scan_records`]: a crash mid-append left an
/// incomplete (or checksum-failing) final record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset where the valid prefix ends (truncate the file here).
    pub valid_len: usize,
    /// Why the tail was rejected.
    pub reason: &'static str,
}

/// Interior corruption detected by [`scan_records`]: a complete record —
/// not the file's tail — failed its checksum. Recovery must fail-stop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptRecord {
    /// Byte offset of the corrupt record's header.
    pub offset: usize,
    /// What failed.
    pub detail: String,
}

impl fmt::Display for CorruptRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "interior corruption at byte {}: {}",
            self.offset, self.detail
        )
    }
}

impl std::error::Error for CorruptRecord {}

/// The result of a successful [`scan_records`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordScan {
    /// Verified payloads, in file order.
    pub payloads: Vec<Vec<u8>>,
    /// The torn tail, if the buffer did not end cleanly. `valid_len` is the
    /// length of the verified prefix; callers truncate the file to it.
    pub torn: Option<TornTail>,
}

impl RecordScan {
    /// Bytes covered by the verified records (where a torn tail starts).
    pub fn valid_len(&self) -> usize {
        self.torn.as_ref().map_or_else(
            || {
                self.payloads
                    .iter()
                    .map(|p| RECORD_HEADER_LEN + p.len())
                    .sum()
            },
            |t| t.valid_len,
        )
    }
}

/// Walks `bytes` as a sequence of framed records.
///
/// Returns `Ok` with every verified payload and an optional torn tail, or
/// `Err` on interior corruption (see the module docs for the contract).
/// Never panics and never reads past the buffer, whatever the input.
pub fn scan_records(bytes: &[u8]) -> Result<RecordScan, CorruptRecord> {
    let mut payloads = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let rem = &bytes[offset..];
        if rem.len() < RECORD_HEADER_LEN {
            return Ok(RecordScan {
                payloads,
                torn: Some(TornTail {
                    valid_len: offset,
                    reason: "truncated record header",
                }),
            });
        }
        let len = u32::from_le_bytes(rem[0..4].try_into().unwrap()) as usize;
        let sum = u64::from_le_bytes(rem[4..12].try_into().unwrap());
        let body = &rem[RECORD_HEADER_LEN..];
        if body.len() < len {
            // The declared length runs past the buffer: a torn append (or a
            // corrupted prefix — indistinguishable, and truncation is the
            // safe answer for both: we keep the verified prefix only).
            return Ok(RecordScan {
                payloads,
                torn: Some(TornTail {
                    valid_len: offset,
                    reason: "truncated record payload",
                }),
            });
        }
        let payload = &body[..len];
        if fnv1a(payload) != sum {
            let end = offset + RECORD_HEADER_LEN + len;
            if end == bytes.len() {
                // The failing record is the file's tail: a crash between
                // the header write and the payload landing. Torn, not
                // corrupt.
                return Ok(RecordScan {
                    payloads,
                    torn: Some(TornTail {
                        valid_len: offset,
                        reason: "checksum mismatch in final record",
                    }),
                });
            }
            return Err(CorruptRecord {
                offset,
                detail: format!(
                    "checksum mismatch in record of {len} bytes ({} bytes follow)",
                    bytes.len() - end
                ),
            });
        }
        payloads.push(payload.to_vec());
        offset += RECORD_HEADER_LEN + len;
    }
    Ok(RecordScan {
        payloads,
        torn: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal(payloads: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        for p in payloads {
            encode_record(p, &mut out);
        }
        out
    }

    #[test]
    fn roundtrip_and_clean_end() {
        let buf = journal(&[b"alpha", b"", b"gamma-gamma"]);
        let scan = scan_records(&buf).unwrap();
        assert_eq!(
            scan.payloads,
            vec![b"alpha".to_vec(), vec![], b"gamma-gamma".to_vec()]
        );
        assert!(scan.torn.is_none());
        assert_eq!(scan.valid_len(), buf.len());
        assert!(scan_records(&[]).unwrap().payloads.is_empty());
    }

    #[test]
    fn torn_tail_recovers_prefix() {
        let buf = journal(&[b"one", b"two", b"three"]);
        // Cut mid-payload of the last record.
        let cut = buf.len() - 2;
        let scan = scan_records(&buf[..cut]).unwrap();
        assert_eq!(scan.payloads, vec![b"one".to_vec(), b"two".to_vec()]);
        let torn = scan.torn.unwrap();
        assert_eq!(torn.valid_len, journal(&[b"one", b"two"]).len());
        // Cut mid-header of the second record.
        let cut = journal(&[b"one"]).len() + 3;
        let scan = scan_records(&buf[..cut]).unwrap();
        assert_eq!(scan.payloads, vec![b"one".to_vec()]);
        assert_eq!(scan.torn.unwrap().reason, "truncated record header");
    }

    #[test]
    fn final_record_bitflip_is_torn_not_corrupt() {
        let mut buf = journal(&[b"keep", b"mangle-me"]);
        let n = buf.len();
        buf[n - 1] ^= 0x10;
        let scan = scan_records(&buf).unwrap();
        assert_eq!(scan.payloads, vec![b"keep".to_vec()]);
        assert_eq!(
            scan.torn.unwrap().reason,
            "checksum mismatch in final record"
        );
    }

    #[test]
    fn interior_bitflip_fails_stop() {
        let mut buf = journal(&[b"first-record", b"second"]);
        // Flip a payload bit of the FIRST record (bytes follow it).
        buf[RECORD_HEADER_LEN] ^= 0x01;
        let err = scan_records(&buf).unwrap_err();
        assert_eq!(err.offset, 0);
        assert!(err.to_string().contains("interior corruption"), "{err}");
    }

    #[test]
    fn oversized_length_prefix_cannot_over_read() {
        let mut buf = journal(&[b"ok"]);
        let mut tail = Vec::new();
        tail.extend_from_slice(&u32::MAX.to_le_bytes());
        tail.extend_from_slice(&0u64.to_le_bytes());
        tail.extend_from_slice(b"short");
        buf.extend_from_slice(&tail);
        let scan = scan_records(&buf).unwrap();
        assert_eq!(scan.payloads, vec![b"ok".to_vec()]);
        assert_eq!(scan.torn.unwrap().reason, "truncated record payload");
        assert_eq!(scan.valid_len(), journal(&[b"ok"]).len());
    }
}
