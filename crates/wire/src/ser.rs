//! Serializer: serde data model → Beehive wire bytes.

use serde::ser::{self, Serialize};

use crate::error::{Error, Result};
use crate::varint::encode_varint;

/// Serializes `value` into a freshly allocated `Vec<u8>`.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    let mut ser = Serializer::new();
    value.serialize(&mut ser)?;
    Ok(ser.into_inner())
}

/// Serializes `value` into any `std::io::Write`.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    writer: &mut W,
    value: &T,
) -> Result<()> {
    let buf = to_vec(value)?;
    writer.write_all(&buf)?;
    Ok(())
}

/// The wire-format serializer. Accumulates output into an internal buffer.
pub struct Serializer {
    out: Vec<u8>,
}

impl Serializer {
    /// Creates a serializer with an empty output buffer.
    pub fn new() -> Self {
        Serializer { out: Vec::new() }
    }

    /// Creates a serializer with a pre-allocated buffer of `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        Serializer {
            out: Vec::with_capacity(cap),
        }
    }

    /// Consumes the serializer, returning the encoded bytes.
    pub fn into_inner(self) -> Vec<u8> {
        self.out
    }

    fn put_len(&mut self, len: usize) {
        encode_varint(len as u64, &mut self.out);
    }
}

impl Default for Serializer {
    fn default() -> Self {
        Self::new()
    }
}

macro_rules! ser_int {
    ($name:ident, $ty:ty) => {
        fn $name(self, v: $ty) -> Result<()> {
            self.out.extend_from_slice(&v.to_le_bytes());
            Ok(())
        }
    };
}

impl<'a> ser::Serializer for &'a mut Serializer {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<()> {
        self.out.push(v as u8);
        Ok(())
    }

    ser_int!(serialize_i8, i8);
    ser_int!(serialize_i16, i16);
    ser_int!(serialize_i32, i32);
    ser_int!(serialize_i64, i64);
    ser_int!(serialize_i128, i128);
    ser_int!(serialize_u8, u8);
    ser_int!(serialize_u16, u16);
    ser_int!(serialize_u32, u32);
    ser_int!(serialize_u64, u64);
    ser_int!(serialize_u128, u128);
    ser_int!(serialize_f32, f32);
    ser_int!(serialize_f64, f64);

    fn serialize_char(self, v: char) -> Result<()> {
        self.serialize_u32(v as u32)
    }

    fn serialize_str(self, v: &str) -> Result<()> {
        self.put_len(v.len());
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<()> {
        self.put_len(v.len());
        self.out.extend_from_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<()> {
        self.out.push(0);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<()> {
        self.out.push(1);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<()> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<()> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<()> {
        encode_varint(variant_index as u64, &mut self.out);
        Ok(())
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<()> {
        encode_varint(variant_index as u64, &mut self.out);
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Compound<'a>> {
        let len = len.ok_or_else(|| {
            Error::Custom("beehive-wire requires sequence lengths up front".into())
        })?;
        self.put_len(len);
        Ok(Compound { ser: self })
    }

    fn serialize_tuple(self, _len: usize) -> Result<Compound<'a>> {
        Ok(Compound { ser: self })
    }

    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Compound<'a>> {
        Ok(Compound { ser: self })
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>> {
        encode_varint(variant_index as u64, &mut self.out);
        Ok(Compound { ser: self })
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Compound<'a>> {
        let len =
            len.ok_or_else(|| Error::Custom("beehive-wire requires map lengths up front".into()))?;
        self.put_len(len);
        Ok(Compound { ser: self })
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Compound<'a>> {
        Ok(Compound { ser: self })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>> {
        encode_varint(variant_index as u64, &mut self.out);
        Ok(Compound { ser: self })
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

/// Serializer state for compound types (seqs, tuples, maps, structs).
pub struct Compound<'a> {
    ser: &'a mut Serializer,
}

impl ser::SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeTuple for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeTupleStruct for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeTupleVariant for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<()> {
        key.serialize(&mut *self.ser)
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}
