//! LEB128 variable-length integer encoding for lengths and variant indices.

use crate::error::{Error, Result};

/// Appends `value` to `out` as an LEB128 varint (1–10 bytes).
pub fn encode_varint(mut value: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Number of bytes `encode_varint` would emit for `value`.
pub fn varint_len(value: u64) -> usize {
    // 1 byte per 7 significant bits, minimum 1.
    let bits = 64 - value.leading_zeros() as usize;
    std::cmp::max(1, bits.div_ceil(7))
}

/// Decodes an LEB128 varint from the front of `input`, returning the value
/// and the number of bytes consumed.
pub fn decode_varint(input: &[u8]) -> Result<(u64, usize)> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in input.iter().enumerate() {
        if i >= 10 {
            return Err(Error::VarintOverflow);
        }
        let low = (byte & 0x7F) as u64;
        if shift >= 64 || (shift == 63 && low > 1) {
            return Err(Error::VarintOverflow);
        }
        value |= low << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(Error::Eof)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            255,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            encode_varint(v, &mut buf);
            assert_eq!(buf.len(), varint_len(v), "len mismatch for {v}");
            let (back, used) = decode_varint(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn single_byte_values() {
        for v in 0..=127u64 {
            let mut buf = Vec::new();
            encode_varint(v, &mut buf);
            assert_eq!(buf, vec![v as u8]);
        }
    }

    #[test]
    fn empty_input_is_eof() {
        assert!(matches!(decode_varint(&[]), Err(Error::Eof)));
    }

    #[test]
    fn unterminated_is_eof() {
        assert!(matches!(decode_varint(&[0x80, 0x80]), Err(Error::Eof)));
    }

    #[test]
    fn overlong_is_rejected() {
        // 11 continuation bytes
        let buf = [0x80u8; 11];
        assert!(matches!(decode_varint(&buf), Err(Error::VarintOverflow)));
    }

    #[test]
    fn max_u64_is_ten_bytes() {
        let mut buf = Vec::new();
        encode_varint(u64::MAX, &mut buf);
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn overflow_bits_rejected() {
        // 10th byte with more than 1 significant bit overflows u64
        let buf = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        assert!(matches!(decode_varint(&buf), Err(Error::VarintOverflow)));
    }
}
