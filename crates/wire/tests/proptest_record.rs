//! Property tests for the checksummed record codec: whatever bytes recovery
//! is handed — truncated journals, bit flips at any offset, pure garbage —
//! the scan must never panic, never over-read, and must recover exactly the
//! longest valid prefix when the damage is a torn tail.

use beehive_wire::record::{encode_record, fnv1a, scan_records, RECORD_HEADER_LEN};
use proptest::prelude::*;

fn journal(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    for p in payloads {
        encode_record(p, &mut out);
    }
    out
}

/// Byte length of the first `n` framed records.
fn prefix_len(payloads: &[Vec<u8>], n: usize) -> usize {
    payloads[..n]
        .iter()
        .map(|p| RECORD_HEADER_LEN + p.len())
        .sum()
}

fn payloads_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 0..8)
}

proptest! {
    /// Encoding then scanning recovers every payload with no torn tail.
    #[test]
    fn roundtrip(payloads in payloads_strategy()) {
        let buf = journal(&payloads);
        let scan = scan_records(&buf).unwrap();
        prop_assert_eq!(&scan.payloads, &payloads);
        prop_assert!(scan.torn.is_none());
        prop_assert_eq!(scan.valid_len(), buf.len());
    }

    /// Truncating a valid journal at ANY byte recovers exactly the records
    /// that fit wholly within the cut (the longest valid prefix), reports a
    /// torn tail iff the cut landed mid-record, and never errors: a
    /// truncated valid journal has no interior corruption.
    #[test]
    fn truncation_recovers_longest_valid_prefix(
        payloads in payloads_strategy(),
        cut_seed in any::<prop::sample::Index>(),
    ) {
        let buf = journal(&payloads);
        let cut = if buf.is_empty() { 0 } else { cut_seed.index(buf.len() + 1) };
        let scan = scan_records(&buf[..cut]).unwrap();
        let whole = (0..=payloads.len())
            .rev()
            .find(|&n| prefix_len(&payloads, n) <= cut)
            .unwrap();
        prop_assert_eq!(&scan.payloads[..], &payloads[..whole]);
        let at_boundary = prefix_len(&payloads, whole) == cut;
        prop_assert_eq!(scan.torn.is_none(), at_boundary);
        if let Some(torn) = scan.torn {
            prop_assert_eq!(torn.valid_len, prefix_len(&payloads, whole));
        }
    }

    /// Flipping one bit anywhere in a valid journal never panics, and every
    /// successful scan still yields an unmodified prefix of the original
    /// payloads — damage is either truncated (tail) or rejected (interior),
    /// never silently decoded into different data.
    #[test]
    fn single_bit_flip_never_panics_or_diverges(
        payloads in payloads_strategy().prop_filter("need bytes", |p| !p.is_empty()),
        pos_seed in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut buf = journal(&payloads);
        let pos = pos_seed.index(buf.len());
        buf[pos] ^= 1 << bit;
        if let Ok(scan) = scan_records(&buf) {
            prop_assert!(scan.payloads.len() <= payloads.len());
            for (got, want) in scan.payloads.iter().zip(payloads.iter()) {
                // FNV-1a is not cryptographic, but a single-bit flip always
                // changes the hash, so a surviving record is untouched.
                prop_assert_eq!(got, want);
            }
            prop_assert!(scan.valid_len() <= buf.len());
        }
    }

    /// Arbitrary garbage: the scan terminates without panicking and never
    /// claims more valid bytes than exist.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(scan) = scan_records(&bytes) {
            prop_assert!(scan.valid_len() <= bytes.len());
        }
    }

    /// FNV-1a changes under any single-bit flip of the hashed bytes (the
    /// property the bit-flip test above leans on).
    #[test]
    fn fnv1a_detects_single_bit_flips(
        bytes in prop::collection::vec(any::<u8>(), 1..64),
        pos_seed in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut flipped = bytes.clone();
        let pos = pos_seed.index(bytes.len());
        flipped[pos] ^= 1 << bit;
        prop_assert_ne!(fnv1a(&bytes), fnv1a(&flipped));
    }
}
