//! Property tests: arbitrary values must round-trip through the wire format,
//! and decoding must never panic on arbitrary input.

use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

#[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
enum WireEnum {
    A,
    B(u64),
    C(String, Option<i32>),
    D { flag: bool, data: Vec<u8> },
}

#[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
struct WireStruct {
    id: u64,
    name: String,
    tags: Vec<String>,
    weights: BTreeMap<String, f64>,
    variant: WireEnum,
    maybe: Option<Box<WireStruct>>,
}

fn arb_enum() -> impl Strategy<Value = WireEnum> {
    prop_oneof![
        Just(WireEnum::A),
        any::<u64>().prop_map(WireEnum::B),
        (".{0,20}", proptest::option::of(any::<i32>())).prop_map(|(s, o)| WireEnum::C(s, o)),
        (any::<bool>(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(flag, data)| WireEnum::D { flag, data }),
    ]
}

fn arb_struct(depth: u32) -> BoxedStrategy<WireStruct> {
    let leaf = (
        any::<u64>(),
        ".{0,16}",
        proptest::collection::vec(".{0,8}", 0..4),
        proptest::collection::btree_map(".{0,8}", any::<f64>(), 0..4),
        arb_enum(),
    )
        .prop_map(|(id, name, tags, weights, variant)| WireStruct {
            id,
            name,
            tags,
            weights,
            variant,
            maybe: None,
        });
    if depth == 0 {
        leaf.boxed()
    } else {
        (leaf, proptest::option::of(arb_struct(depth - 1)))
            .prop_map(|(mut s, inner)| {
                s.maybe = inner.map(Box::new);
                s
            })
            .boxed()
    }
}

proptest! {
    #[test]
    fn u64_roundtrip(v in any::<u64>()) {
        let buf = beehive_wire::to_vec(&v).unwrap();
        prop_assert_eq!(beehive_wire::from_slice::<u64>(&buf).unwrap(), v);
    }

    #[test]
    fn string_roundtrip(s in ".{0,256}") {
        let buf = beehive_wire::to_vec(&s).unwrap();
        prop_assert_eq!(beehive_wire::from_slice::<String>(&buf).unwrap(), s);
    }

    #[test]
    fn float_roundtrip(v in any::<f64>()) {
        let buf = beehive_wire::to_vec(&v).unwrap();
        let back: f64 = beehive_wire::from_slice(&buf).unwrap();
        prop_assert_eq!(v.to_bits(), back.to_bits());
    }

    #[test]
    fn vec_roundtrip(v in proptest::collection::vec(any::<i32>(), 0..128)) {
        let buf = beehive_wire::to_vec(&v).unwrap();
        prop_assert_eq!(beehive_wire::from_slice::<Vec<i32>>(&buf).unwrap(), v);
    }

    #[test]
    fn struct_roundtrip(s in arb_struct(2)) {
        let buf = beehive_wire::to_vec(&s).unwrap();
        let back: WireStruct = beehive_wire::from_slice(&buf).unwrap();
        prop_assert_eq!(back, s);
    }

    #[test]
    fn encoded_len_agrees(s in arb_struct(1)) {
        let buf = beehive_wire::to_vec(&s).unwrap();
        prop_assert_eq!(beehive_wire::encoded_len(&s).unwrap(), buf.len());
    }

    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Any of these may fail, but none may panic.
        let _ = beehive_wire::from_slice::<WireStruct>(&bytes);
        let _ = beehive_wire::from_slice::<Vec<String>>(&bytes);
        let _ = beehive_wire::from_slice::<WireEnum>(&bytes);
        let _ = beehive_wire::from_slice::<BTreeMap<u64, Vec<u8>>>(&bytes);
    }

    #[test]
    fn map_roundtrip(m in proptest::collection::btree_map(any::<u32>(), ".{0,8}", 0..32)) {
        let buf = beehive_wire::to_vec(&m).unwrap();
        prop_assert_eq!(beehive_wire::from_slice::<BTreeMap<u32, String>>(&buf).unwrap(), m);
    }
}
