//! Distributed routing (paper §4): per-prefix RIB cells spread across a
//! 3-hive cluster, with a centralized path-computation app announcing
//! shortest paths into the RIB.
//!
//! ```sh
//! cargo run --example distributed_routing
//! ```

use beehive::apps::discovery::LinkDiscovered;
use beehive::apps::routing::{path_app, rib_app, PathRequest, RouteQuery, RouteReply, RIB_APP};
use beehive::prelude::*;
use beehive::sim::{ClusterConfig, SimCluster, Topology};
use parking_lot::Mutex;
use std::sync::Arc;

fn main() {
    let replies = Arc::new(Mutex::new(Vec::<RouteReply>::new()));

    let r2 = replies.clone();
    let mut cluster = SimCluster::new(
        ClusterConfig {
            hives: 3,
            voters: 3,
            ..Default::default()
        },
        move |hive| {
            hive.install(rib_app());
            hive.install(path_app());
            let r3 = r2.clone();
            hive.install(
                App::builder("observer")
                    .handle::<RouteReply>(
                        |m| Mapped::cell("x", &m.prefix),
                        move |m, ctx| {
                            println!("  [{}] {} -> {:?}", ctx.hive(), m.prefix, m.best);
                            r3.lock().push(m.clone());
                            Ok(())
                        },
                    )
                    .build(),
            );
        },
    );
    cluster.elect_registry(60_000).expect("leader");

    // Discover a small tree topology (both link directions).
    let topo = Topology::tree(3, 2);
    println!(
        "discovering {} switches, {} links…",
        topo.len(),
        topo.links.len()
    );
    for l in &topo.links {
        cluster.hive_mut(HiveId(1)).emit(LinkDiscovered {
            src: l.a.0,
            src_port: l.a.1,
            dst: l.b.0,
        });
        cluster.hive_mut(HiveId(1)).emit(LinkDiscovered {
            src: l.b.0,
            src_port: l.b.1,
            dst: l.a.0,
        });
    }
    cluster.advance(3_000, 50);

    // Ask for paths between the leaves — requests arrive on different hives.
    let edges = topo.edges();
    println!("computing paths between edge switches…");
    cluster.hive_mut(HiveId(1)).emit(PathRequest {
        src: edges[0],
        dst: edges[3],
        prefix: format!("to-{}", edges[3]),
    });
    cluster.hive_mut(HiveId(2)).emit(PathRequest {
        src: edges[1],
        dst: edges[2],
        prefix: format!("to-{}", edges[2]),
    });
    cluster.advance(3_000, 50);

    // Query the RIB from a *different* hive than the announcer.
    println!("querying the RIB:");
    cluster.hive_mut(HiveId(3)).emit(RouteQuery {
        prefix: format!("to-{}", edges[3]),
    });
    cluster.hive_mut(HiveId(3)).emit(RouteQuery {
        prefix: format!("to-{}", edges[2]),
    });
    cluster.advance(3_000, 50);

    let got = replies.lock().clone();
    assert_eq!(got.len(), 2);
    assert!(
        got.iter().all(|r| r.best.is_some()),
        "both prefixes resolved"
    );

    // The RIB's prefix cells are spread over the cluster.
    let spread: Vec<(HiveId, usize)> = cluster
        .ids()
        .into_iter()
        .map(|id| (id, cluster.hive(id).local_bee_count(RIB_APP)))
        .collect();
    println!("RIB bees per hive: {spread:?}");
    let total: usize = spread.iter().map(|&(_, n)| n).sum();
    assert_eq!(total, 2, "one bee per announced prefix");
}
