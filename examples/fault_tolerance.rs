//! Colony replication and failover (the paper's §7 fault-tolerance
//! direction): a bee's committed transactions replicate to shadow hives;
//! when its hive dies, a replica promotes the shadow and the application
//! keeps serving with zero committed-state loss.
//!
//! ```sh
//! cargo run --example fault_tolerance
//! ```

use beehive::prelude::*;
use beehive::sim::{ClusterConfig, SimCluster};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Record {
    device: String,
    reading: i64,
}
beehive::core::impl_message!(Record);

fn telemetry() -> App {
    App::builder("telemetry")
        .handle::<Record>(
            |m| Mapped::cell("series", &m.device),
            |m, ctx| {
                let mut series: Vec<i64> = ctx
                    .get("series", &m.device)
                    .map_err(|e| e.to_string())?
                    .unwrap_or_default();
                series.push(m.reading);
                ctx.put("series", m.device.clone(), &series)
                    .map_err(|e| e.to_string())?;
                Ok(())
            },
        )
        .build()
}

fn main() {
    // 4 hives, registry quorum of 3, replication factor 2: every bee's
    // transactions ship to one shadow hive.
    let mut cluster = SimCluster::new(
        ClusterConfig {
            hives: 4,
            voters: 3,
            replication_factor: 2,
            ..Default::default()
        },
        |h| h.install(telemetry()),
    );
    cluster.elect_registry(120_000).expect("registry leader");
    println!("cluster up: 4 hives, replication factor 2");

    // Device data arrives at hive 4 → its bee lives there; hive 1 (ring
    // successor) shadows it.
    for reading in [10, 20, 30, 40, 50] {
        cluster.hive_mut(HiveId(4)).emit(Record {
            device: "sensor-7".into(),
            reading,
        });
    }
    cluster.advance(5_000, 50);

    let cell = Cell::new("series", "sensor-7");
    let mirror = cluster.hive(HiveId(1)).registry_view();
    let bee = mirror.owner("telemetry", &cell).expect("bee exists");
    println!(
        "sensor-7's bee {bee} lives on {}, shadowed by hive-1 ({} shadow(s) there)",
        mirror.hive_of(bee).unwrap(),
        cluster.hive(HiveId(1)).shadow_count()
    );
    assert_eq!(mirror.hive_of(bee), Some(HiveId(4)));
    assert_eq!(cluster.hive(HiveId(1)).shadow_count(), 1);

    // Disaster: hive 4 drops off the network.
    println!("\n*** hive-4 fails ***\n");
    for id in cluster.ids() {
        if id != HiveId(4) {
            cluster.fabric.partition(HiveId(4), id);
        }
    }
    cluster.advance(2_000, 50);

    // The deployment's failure detector triggers recovery on the replica.
    let recovered = cluster.hive_mut(HiveId(1)).recover_from(HiveId(4));
    cluster.advance(5_000, 50);
    println!("hive-1 recovered {recovered} bee(s) from its shadows");

    let series: Vec<i64> = cluster
        .hive(HiveId(1))
        .peek_state("telemetry", bee, "series", "sensor-7")
        .expect("state survived the failure");
    println!("sensor-7 series after failover: {series:?}");
    assert_eq!(series, vec![10, 20, 30, 40, 50], "no committed data lost");

    // And it keeps ingesting, reachable from any surviving hive.
    cluster.hive_mut(HiveId(2)).emit(Record {
        device: "sensor-7".into(),
        reading: 60,
    });
    cluster.advance(5_000, 50);
    let series: Vec<i64> = cluster
        .hive(HiveId(1))
        .peek_state("telemetry", bee, "series", "sensor-7")
        .unwrap();
    println!("after another reading: {series:?}");
    assert_eq!(series.last(), Some(&60));
    println!("\nfailover complete: same bee id, same state, new hive — apps never noticed");
}
