//! A Kandoo-style local application: per-switch L2 learning over real
//! OpenFlow messages, on a simulated 2-hive network.
//!
//! Hosts ping each other through emulated switches; table misses punt
//! `PACKET_IN`s to the control plane, the learning switch app learns MACs,
//! programs flows with `FLOW_MOD` and releases packets with `PACKET_OUT`.
//!
//! ```sh
//! cargo run --example learning_switch
//! ```

use std::sync::Arc;

use beehive::apps::learning_switch::{learning_switch_app, LEARNING_SWITCH_APP};
use beehive::openflow::driver::driver_app;
use beehive::openflow::Match;
use beehive::sim::{ClusterConfig, SimCluster, SwitchFleet, Topology};

fn mac(n: u8) -> [u8; 6] {
    [0, 0, 0, 0, 0, n]
}

fn main() {
    // A 3-switch tree, two hives.
    let topo = Topology::tree(2, 2);
    let mut cluster = SimCluster::new(
        ClusterConfig {
            hives: 2,
            voters: 2,
            ..Default::default()
        },
        |_| {},
    );
    let masters = topo.assign_masters(&cluster.ids());
    let handles: Vec<_> = cluster
        .ids()
        .iter()
        .map(|&id| cluster.hive(id).handle())
        .collect();
    let fleet = Arc::new(SwitchFleet::new(
        topo.switches.iter().map(|s| (s.dpid, s.ports)),
        masters.clone(),
        handles,
    ));
    for id in cluster.ids() {
        let hive = cluster.hive_mut(id);
        hive.install(driver_app(fleet.clone()));
        hive.install(learning_switch_app());
    }
    cluster.elect_registry(60_000).expect("leader");
    fleet.connect_all();
    let f = fleet.clone();
    cluster.advance_with(2_000, 100, || f.pump());

    // Host A (port 3) talks to host B (port 4) on switch 2.
    let sw = 2u64;
    println!("host A -> host B on switch {sw} (both unknown): expect flood + learn");
    let a_to_b = Match {
        in_port: 3,
        dl_src: mac(0xA),
        dl_dst: mac(0xB),
        ..Default::default()
    };
    fleet.inject_packet(sw, &a_to_b, 64);
    let f = fleet.clone();
    cluster.advance_with(1_000, 100, || f.pump());

    println!("host B -> host A (A known now): expect FLOW_MOD installed");
    let b_to_a = Match {
        in_port: 4,
        dl_src: mac(0xB),
        dl_dst: mac(0xA),
        ..Default::default()
    };
    fleet.inject_packet(sw, &b_to_a, 64);
    let f = fleet.clone();
    cluster.advance_with(1_000, 100, || f.pump());

    let installed = fleet.flow_count(sw);
    println!("switch {sw} now has {installed} flow(s) installed");
    assert!(installed >= 1, "the reply should have programmed a flow");

    // Subsequent B->A packets hit the fast path: no more PACKET_INs.
    let before_errors: u64 = cluster
        .ids()
        .iter()
        .map(|&id| cluster.hive(id).counters().handler_errors)
        .sum();
    let out_ports = fleet.inject_packet(sw, &b_to_a, 64).unwrap();
    println!("fast-path forward to ports {out_ports:?} (no controller involvement)");
    assert!(
        !out_ports.is_empty(),
        "packet must be switched in hardware now"
    );
    let _ = before_errors;

    // The learning bees live next to their switches' master hives.
    for id in cluster.ids() {
        let n = cluster.hive(id).local_bee_count(LEARNING_SWITCH_APP);
        println!("{id}: {n} learning-switch bee(s)");
    }
    println!(
        "switch {sw}'s master is {}, where its MAC table lives — Kandoo-style local \
         processing with no explicit placement code",
        masters[&sw]
    );
}
