//! NVP-style network virtualization: tenants' virtual networks are shards —
//! all state and events of one vnet are handled by one bee, and different
//! vnets scale out across the cluster (paper §4).
//!
//! ```sh
//! cargo run --example network_virtualization
//! ```

use std::sync::Arc;

use beehive::apps::vnet::{vnet_app, AttachPort, CreateVnet, TunnelSetup, VnetPacket, VNET_APP};
use beehive::prelude::*;
use parking_lot::Mutex;

fn mac(n: u8) -> [u8; 6] {
    [0xEE, 0, 0, 0, 0, n]
}

fn main() {
    let mut hive = Hive::new(
        beehive::core::HiveConfig::standalone(HiveId(1)),
        Arc::new(SystemClock::new()),
        Box::new(Loopback::new(HiveId(1))),
    );
    hive.install(vnet_app());

    // Observe tunnel decisions.
    let tunnels = Arc::new(Mutex::new(Vec::new()));
    let t2 = tunnels.clone();
    hive.install(
        App::builder("observer")
            .handle::<TunnelSetup>(
                |m| Mapped::cell("t", m.vnet.to_string()),
                move |m, _| {
                    println!(
                        "  vnet {}: tunnel {} -> {}",
                        m.vnet, m.src_switch, m.dst_switch
                    );
                    t2.lock().push((m.vnet, m.src_switch, m.dst_switch));
                    Ok(())
                },
            )
            .build(),
    );

    println!("provisioning two tenants…");
    hive.emit(CreateVnet {
        vnet: 1,
        tenant: "acme".into(),
    });
    hive.emit(CreateVnet {
        vnet: 2,
        tenant: "globex".into(),
    });

    // Tenant acme: VMs on switches 10 and 20.
    hive.emit(AttachPort {
        vnet: 1,
        switch: 10,
        port: 1,
        mac: mac(1),
    });
    hive.emit(AttachPort {
        vnet: 1,
        switch: 20,
        port: 2,
        mac: mac(2),
    });
    // Tenant globex: VMs on switches 10 and 30. Same physical switch 10 —
    // but isolated state.
    hive.emit(AttachPort {
        vnet: 2,
        switch: 10,
        port: 3,
        mac: mac(3),
    });
    hive.emit(AttachPort {
        vnet: 2,
        switch: 30,
        port: 1,
        mac: mac(4),
    });
    hive.step_until_quiescent(1_000);

    println!("tenant traffic:");
    // acme VM1 -> VM2 (cross-switch): needs a tunnel 10->20.
    hive.emit(VnetPacket {
        vnet: 1,
        switch: 10,
        src_mac: mac(1),
        dst_mac: mac(2),
    });
    // globex VM3 -> VM4 (cross-switch): needs a tunnel 10->30.
    hive.emit(VnetPacket {
        vnet: 2,
        switch: 10,
        src_mac: mac(3),
        dst_mac: mac(4),
    });
    // acme VM1 -> globex VM4: crosses tenants — MUST be ignored (isolation).
    hive.emit(VnetPacket {
        vnet: 1,
        switch: 10,
        src_mac: mac(1),
        dst_mac: mac(4),
    });
    hive.step_until_quiescent(1_000);

    let t = tunnels.lock().clone();
    assert_eq!(t.len(), 2, "exactly the two intra-tenant tunnels");
    assert!(t.contains(&(1, 10, 20)));
    assert!(t.contains(&(2, 10, 30)));

    println!(
        "\n{} vnet shards (bees) — one per tenant network; tenant isolation held: \
         the cross-tenant packet resolved to nothing",
        hive.local_bee_count(VNET_APP)
    );
    assert_eq!(hive.local_bee_count(VNET_APP), 2);
}
