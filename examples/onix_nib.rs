//! ONIX NIB emulation (paper §4): the network graph's nodes are Beehive
//! cells — every query/update for one node is handled by that node's bee,
//! distributed across a cluster with no extra code.
//!
//! ```sh
//! cargo run --example onix_nib
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use beehive::apps::nib::{nib_app, EdgeAdd, NodeKind, NodeQuery, NodeReply, NodeUpdate, NIB_APP};
use beehive::prelude::*;
use beehive::sim::{ClusterConfig, SimCluster};
use parking_lot::Mutex;

fn attrs(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
    pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn main() {
    let replies = Arc::new(Mutex::new(Vec::<NodeReply>::new()));
    let r2 = replies.clone();
    let mut cluster = SimCluster::new(
        ClusterConfig {
            hives: 3,
            voters: 3,
            ..Default::default()
        },
        move |hive| {
            hive.install(nib_app());
            let r3 = r2.clone();
            hive.install(
                App::builder("observer")
                    .handle::<NodeReply>(
                        |m| Mapped::cell("x", &m.id),
                        move |m, _| {
                            r3.lock().push(m.clone());
                            Ok(())
                        },
                    )
                    .build(),
            );
        },
    );
    cluster.elect_registry(60_000).expect("leader");

    // Build a NIB: two switches with ports, linked. Updates arrive through
    // different hives — the registry routes each node's messages to its bee.
    println!("populating the NIB from three different hives…");
    cluster.hive_mut(HiveId(1)).emit(NodeUpdate {
        id: "sw1".into(),
        kind: NodeKind::Switch,
        attrs: attrs(&[("dpid", "0x1"), ("vendor", "beehive")]),
    });
    cluster.hive_mut(HiveId(2)).emit(NodeUpdate {
        id: "sw2".into(),
        kind: NodeKind::Switch,
        attrs: attrs(&[("dpid", "0x2")]),
    });
    cluster.hive_mut(HiveId(3)).emit(NodeUpdate {
        id: "sw1:p1".into(),
        kind: NodeKind::Port,
        attrs: attrs(&[("speed", "10G")]),
    });
    cluster.advance(2_000, 50);

    cluster.hive_mut(HiveId(2)).emit(EdgeAdd {
        from: "sw1".into(),
        to: "sw1:p1".into(),
    });
    cluster.hive_mut(HiveId(3)).emit(EdgeAdd {
        from: "sw1".into(),
        to: "sw2".into(),
    });
    // A second attribute update for sw1 from yet another hive: must merge.
    cluster.hive_mut(HiveId(2)).emit(NodeUpdate {
        id: "sw1".into(),
        kind: NodeKind::Switch,
        attrs: attrs(&[("name", "edge-1")]),
    });
    cluster.advance(2_000, 50);

    println!("querying sw1 from hive 3…");
    cluster
        .hive_mut(HiveId(3))
        .emit(NodeQuery { id: "sw1".into() });
    cluster.advance(2_000, 50);

    let got = replies.lock().clone();
    let node = got[0].node.clone().expect("sw1 exists");
    println!("sw1 attrs: {:?}", node.attrs);
    println!("sw1 out-edges: {:?}", node.out_edges);
    assert_eq!(node.attrs["vendor"], "beehive");
    assert_eq!(
        node.attrs["name"], "edge-1",
        "updates from different hives merged"
    );
    assert_eq!(
        node.out_edges,
        vec!["sw1:p1".to_string(), "sw2".to_string()]
    );

    let spread: Vec<usize> = cluster
        .ids()
        .into_iter()
        .map(|id| cluster.hive(id).local_bee_count(NIB_APP))
        .collect();
    println!(
        "NIB bees per hive: {spread:?} ({} nodes total)",
        spread.iter().sum::<usize>()
    );
    assert_eq!(spread.iter().sum::<usize>(), 3, "one bee per NIB node");
}
