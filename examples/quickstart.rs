//! Quickstart: define a stateful control application, run a hive, send it
//! messages, inspect its state and the platform's design feedback.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use beehive::prelude::*;
use serde::{Deserialize, Serialize};

// 1. Messages are plain serde structs wired up with `impl_message!`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct HostSeen {
    host: String,
    switch: u64,
}
beehive::core::impl_message!(HostSeen);

#[derive(Debug, Clone, Serialize, Deserialize)]
struct WhereIs {
    host: String,
}
beehive::core::impl_message!(WhereIs);

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Located {
    host: String,
    switch: Option<u64>,
    sightings: u64,
}
beehive::core::impl_message!(Located);

fn host_tracker() -> App {
    App::builder("host-tracker")
        // `map` declares which state entries the function needs — one cell
        // per host. The platform guarantees all messages for the same host
        // reach the same bee, wherever it lives in the cluster.
        .handle::<HostSeen>(
            |m| Mapped::cell("hosts", &m.host),
            |m, ctx| {
                let n: u64 = ctx
                    .get("hosts", &m.host)
                    .map_err(|e| e.to_string())?
                    .unwrap_or(0);
                ctx.put("hosts", m.host.clone(), &(n + 1))
                    .map_err(|e| e.to_string())?;
                ctx.put("locations", m.host.clone(), &m.switch)
                    .map_err(|e| e.to_string())?;
                Ok(())
            },
        )
        .handle::<WhereIs>(
            |m| Mapped::cell("hosts", &m.host),
            |m, ctx| {
                let sightings: u64 = ctx
                    .get("hosts", &m.host)
                    .map_err(|e| e.to_string())?
                    .unwrap_or(0);
                let switch: Option<u64> =
                    ctx.get("locations", &m.host).map_err(|e| e.to_string())?;
                ctx.emit(Located {
                    host: m.host.clone(),
                    switch,
                    sightings,
                });
                Ok(())
            },
        )
        .build()
}

fn main() {
    // 2. A standalone hive: local registry, loopback transport, real clock.
    let mut hive = Hive::new(
        beehive::core::HiveConfig::standalone(HiveId(1)),
        Arc::new(SystemClock::new()),
        Box::new(Loopback::new(HiveId(1))),
    );
    hive.install(host_tracker());

    // A tiny observer that prints every `Located` answer.
    hive.install(
        App::builder("observer")
            .handle::<Located>(
                |m| Mapped::cell("seen", &m.host),
                |m, _ctx| {
                    println!(
                        "  {} -> switch {:?} (seen {} times)",
                        m.host, m.switch, m.sightings
                    );
                    Ok(())
                },
            )
            .build(),
    );

    // 3. Feed it events and a query.
    println!("emitting sightings…");
    hive.emit(HostSeen {
        host: "10.0.0.1".into(),
        switch: 4,
    });
    hive.emit(HostSeen {
        host: "10.0.0.1".into(),
        switch: 4,
    });
    hive.emit(HostSeen {
        host: "10.0.0.2".into(),
        switch: 9,
    });
    hive.emit(HostSeen {
        host: "10.0.0.1".into(),
        switch: 7,
    }); // host moved
    hive.emit(WhereIs {
        host: "10.0.0.1".into(),
    });
    hive.emit(WhereIs {
        host: "10.0.0.3".into(),
    }); // never seen
    hive.step_until_quiescent(1_000);

    // 4. Inspect: one bee per host key.
    println!(
        "host-tracker is running {} bees (one per host)",
        hive.local_bee_count("host-tracker")
    );

    // 5. Design feedback: this app has no whole-dictionary access, so the
    // platform reports no centralization bottleneck.
    let report = beehive::core::feedback::design_feedback(&host_tracker());
    print!("{report}");
    assert!(!report.is_centralized());
}
