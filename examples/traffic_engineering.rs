//! The paper's running example end to end: the Traffic Engineering app on a
//! simulated multi-hive cluster with OpenFlow switches, in both designs.
//!
//! Prints the platform's design feedback for the naive design (the paper's
//! §5 workflow: instrument → read feedback → decouple → re-measure) and a
//! before/after comparison of message locality.
//!
//! ```sh
//! cargo run --release --example traffic_engineering
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use beehive::apps::te::{decoupled_te_apps, naive_te_app, TeConfig, NAIVE_TE_APP, TE_COLLECT_APP};
use beehive::core::feedback::design_feedback;
use beehive::core::{chrome_trace, FrameKind};
use beehive::openflow::driver::driver_app;
use beehive::sim::{
    generate_flows, ClusterConfig, SimCluster, SwitchFleet, Topology, WorkloadConfig,
};

struct Outcome {
    te_bees_by_hive: BTreeMap<u32, usize>,
    locality: f64,
    interhive_kb: f64,
}

fn run(naive: bool, seconds: u64) -> Outcome {
    let topo = Topology::tree_with_about(13, 3);
    let mut cluster = SimCluster::new(
        ClusterConfig {
            hives: 4,
            voters: 3,
            ..Default::default()
        },
        |_| {},
    );
    let masters = topo.assign_masters(&cluster.ids());
    let handles: Vec<_> = cluster
        .ids()
        .iter()
        .map(|&id| cluster.hive(id).handle())
        .collect();
    let fleet = Arc::new(SwitchFleet::new(
        topo.switches.iter().map(|s| (s.dpid, s.ports)),
        masters,
        handles,
    ));

    let te_cfg = TeConfig {
        delta_bytes_per_sec: 50_000,
    };
    for id in cluster.ids() {
        let hive = cluster.hive_mut(id);
        hive.install(driver_app(fleet.clone()));
        if naive {
            hive.install(naive_te_app(te_cfg));
        } else {
            let (collect, route) = decoupled_te_apps(te_cfg);
            hive.install(collect);
            hive.install(route);
        }
    }

    cluster.elect_registry(60_000).expect("registry leader");
    fleet.connect_all();
    let f2 = fleet.clone();
    cluster.advance_with(2_000, 100, || f2.pump());

    let flows = generate_flows(
        &topo.dpids(),
        &WorkloadConfig {
            flows_per_switch: 20,
            ..Default::default()
        },
    );
    fleet.install_default_routes(&flows);
    cluster.fabric.reset_matrix();

    for _ in 0..seconds {
        fleet.advance_traffic(&flows, 1);
        let f2 = fleet.clone();
        cluster.advance_with(1_000, 100, || f2.pump());
    }

    // Locality: diagonal share of the bee-message matrix.
    let mut local = 0u64;
    let mut total = 0u64;
    let mut te_bees_by_hive = BTreeMap::new();
    let app = if naive { NAIVE_TE_APP } else { TE_COLLECT_APP };
    for id in cluster.ids() {
        let n = cluster.hive(id).local_bee_count(app);
        if n > 0 {
            te_bees_by_hive.insert(id.0, n);
        }
        let instr = cluster.hive(id).instrumentation();
        let instr = instr.lock();
        for (&(src, dst), &count) in &instr.msg_matrix {
            total += count;
            if src == dst {
                local += count;
            }
        }
    }
    // Export the run's busiest causal trace for chrome://tracing / Perfetto.
    if !naive {
        let mut spans = Vec::new();
        for id in cluster.ids() {
            spans.extend(cluster.hive(id).tracer().snapshot());
        }
        let mut by_trace: BTreeMap<u64, usize> = BTreeMap::new();
        for s in &spans {
            *by_trace.entry(s.trace_id).or_insert(0) += 1;
        }
        if let Some((&trace_id, &n)) = by_trace.iter().max_by_key(|&(_, n)| *n) {
            let json = chrome_trace(&spans, trace_id);
            std::fs::create_dir_all("target").ok();
            if std::fs::write("target/te_trace.json", &json).is_ok() {
                println!(
                    "wrote chrome trace of trace {trace_id:#x} ({n} spans) to \
                     target/te_trace.json"
                );
            }
        }
    }

    Outcome {
        te_bees_by_hive,
        locality: if total == 0 {
            0.0
        } else {
            local as f64 / total as f64
        },
        interhive_kb: cluster
            .matrix()
            .total(&[FrameKind::App, FrameKind::Control]) as f64
            / 1000.0,
    }
}

fn main() {
    println!("== Step 1: write the naive TE (Figure 2) and read the feedback ==\n");
    let report = design_feedback(&naive_te_app(TeConfig::default()));
    print!("{report}");
    println!("\n== Step 2: measure it on a 4-hive / 13-switch cluster ==");
    let naive = run(true, 15);
    println!(
        "naive:     TE bees per hive = {:?}  locality = {:.0}%  inter-hive = {:.0} KB",
        naive.te_bees_by_hive,
        naive.locality * 100.0,
        naive.interhive_kb
    );

    println!("\n== Step 3: decouple Route behind MatrixUpdate events, re-measure ==");
    let decoupled = run(false, 15);
    println!(
        "decoupled: TE bees per hive = {:?}  locality = {:.0}%  inter-hive = {:.0} KB",
        decoupled.te_bees_by_hive,
        decoupled.locality * 100.0,
        decoupled.interhive_kb
    );

    println!(
        "\ndecoupling spread collection over {} hives (was {}) and cut inter-hive \
         traffic by {:.1}x",
        decoupled.te_bees_by_hive.len(),
        naive.te_bees_by_hive.len(),
        naive.interhive_kb / decoupled.interhive_kb.max(0.001)
    );
    assert!(decoupled.te_bees_by_hive.len() > naive.te_bees_by_hive.len());
}
