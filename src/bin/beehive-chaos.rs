//! `beehive-chaos` — deterministic chaos-test driver.
//!
//! Derives a fault schedule from each seed (partitions, drops, duplicates,
//! reorders, delays, hive crash+restarts, disk-fault restart storms with
//! torn journal tails, handler faults, forced migrations), runs it against a
//! simulated cluster in virtual time, and audits seven invariants after
//! every tick: cell-ownership exclusivity, registry agreement, message
//! conservation, transaction atomicity, trace-tree well-formedness,
//! event-journal well-formedness and snapshot/compaction sanity.
//!
//! Every run prints one stable line `seed N digest 0x…` — the fold of every
//! per-tick audit. The same seed always produces the same digest, so CI can
//! run a sweep twice and `diff` the outputs as a determinism proof.
//!
//! ```sh
//! beehive-chaos --seeds 0..64            # nightly sweep
//! beehive-chaos --seed 17                # replay one seed
//! beehive-chaos --seeds 0..8 --ticks 40  # a quick smoke
//! ```
//!
//! Options:
//!
//! * `--seeds A..B` — sweep seeds A (inclusive) to B (exclusive)
//! * `--seed N` — run exactly one seed (equivalent to `--seeds N..N+1`)
//! * `--hives N` — cluster size (default 3)
//! * `--ticks N` — active workload ticks per run (default 80)
//! * `--workers N` — executor workers per hive (default 1 = fully deterministic)
//! * `--link-faults-only` — deterministically rewrite every generated window
//!   into a heavy drop/duplicate/reorder window; with the reliable channel
//!   layer such schedules must report `lost=0`
//! * `--inject-ownership-bug` — testing only: plant a deliberate double-owner
//!   bug mid-run to prove the ownership checker catches it
//! * `--out DIR` — write `seed-N.txt` repro files (violations + minimized
//!   schedule) for every failing seed
//!
//! Exit status: 0 on a clean sweep, 1 if any seed violated an invariant.

use std::ops::Range;

use beehive::sim::chaos::{self, ChaosConfig};

struct Args {
    seeds: Range<u64>,
    hives: usize,
    ticks: u64,
    workers: usize,
    link_faults_only: bool,
    inject_ownership_bug: bool,
    out: Option<std::path::PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: beehive-chaos (--seeds A..B | --seed N) [--hives N] [--ticks N] \
         [--workers N] [--link-faults-only] [--inject-ownership-bug] [--out DIR]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut seeds: Option<Range<u64>> = None;
    let mut hives = 3usize;
    let mut ticks = 80u64;
    let mut workers = 1usize;
    let mut link_faults_only = false;
    let mut inject_ownership_bug = false;
    let mut out = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--seeds" => {
                let v = val();
                let (lo, hi) = v.split_once("..").unwrap_or_else(|| usage());
                let lo: u64 = lo.parse().unwrap_or_else(|_| usage());
                let hi: u64 = hi.parse().unwrap_or_else(|_| usage());
                if hi <= lo {
                    usage();
                }
                seeds = Some(lo..hi);
            }
            "--seed" => {
                let n: u64 = val().parse().unwrap_or_else(|_| usage());
                seeds = Some(n..n + 1);
            }
            "--hives" => hives = val().parse::<usize>().unwrap_or_else(|_| usage()).max(1),
            "--ticks" => ticks = val().parse::<u64>().unwrap_or_else(|_| usage()).max(8),
            "--workers" => workers = val().parse::<usize>().unwrap_or_else(|_| usage()).max(1),
            "--link-faults-only" => link_faults_only = true,
            "--inject-ownership-bug" => inject_ownership_bug = true,
            "--out" => out = Some(std::path::PathBuf::from(val())),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    Args {
        seeds: seeds.unwrap_or_else(|| usage()),
        hives,
        ticks,
        workers,
        link_faults_only,
        inject_ownership_bug,
        out,
    }
}

/// Rewrites every window of a generated schedule into a heavy link fault —
/// drop, duplicate or reorder, cycling deterministically by window index.
/// The result is lossless by construction (the reliable channel masks all
/// three), so every seed must report `lost=0`.
fn to_link_faults_only(mut schedule: chaos::FaultSchedule) -> chaos::FaultSchedule {
    use beehive::sim::chaos::FaultKind;
    for (i, w) in schedule.windows.iter_mut().enumerate() {
        w.kind = match i % 3 {
            0 => FaultKind::Drop { permille: 300 },
            1 => FaultKind::Duplicate { permille: 300 },
            _ => FaultKind::Reorder { permille: 500 },
        };
    }
    schedule
}

fn main() {
    let args = parse_args();
    let cfg = ChaosConfig {
        hives: args.hives,
        voters: args.hives.min(3),
        workers: args.workers,
        ticks: args.ticks,
        inject_ownership_bug: args.inject_ownership_bug,
        ..Default::default()
    };
    if let Some(dir) = &args.out {
        std::fs::create_dir_all(dir).expect("create --out directory");
    }

    let total = args.seeds.end - args.seeds.start;
    let mut failures = 0u64;
    for seed in args.seeds.clone() {
        let report = if args.link_faults_only {
            let schedule = to_link_faults_only(chaos::FaultSchedule::generate(seed, &cfg));
            chaos::run(&schedule, &cfg)
        } else {
            chaos::run_seed(seed, &cfg)
        };
        // One stable line per seed: CI diffs two sweeps of this output as
        // the determinism proof. Keep it free of anything time-dependent.
        println!(
            "seed {seed} digest {:#018x} emits={} handled={} dead={} dropped={} dup={} lost={} \
             retransmits={} dups_suppressed={} windows={}",
            report.digest,
            report.emits,
            report.handled,
            report.dead_lettered,
            report.dropped_app,
            report.duplicated_app,
            report.lost,
            report.retransmits,
            report.dups_suppressed,
            report.schedule.windows.len(),
        );
        if report.violations.is_empty() {
            continue;
        }
        failures += 1;
        eprintln!("seed {seed}: {} violation(s)", report.violations.len());
        for v in &report.violations {
            eprintln!("  {v}");
        }
        eprintln!("minimizing seed {seed}…");
        let minimized = chaos::minimize(&report.schedule, &cfg);
        eprintln!(
            "minimized {} -> {} windows:\n{minimized}",
            report.schedule.windows.len(),
            minimized.windows.len()
        );
        if let Some(dir) = &args.out {
            let mut body = format!("seed {seed}\n\nviolations:\n");
            for v in &report.violations {
                body.push_str(&format!("  {v}\n"));
            }
            body.push_str(&format!(
                "\nfull schedule:\n{}\n\nminimized:\n{minimized}\n",
                report.schedule
            ));
            let path = dir.join(format!("seed-{seed}.txt"));
            std::fs::write(&path, body).expect("write repro file");
            eprintln!("repro written to {}", path.display());
        }
    }

    eprintln!("swept {total} seed(s), {failures} failing");
    if failures > 0 {
        std::process::exit(1);
    }
}
