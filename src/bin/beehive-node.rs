//! `beehive-node` — run one Beehive hive over TCP.
//!
//! A minimal production entry point: start N of these (one per machine or
//! port), point them at each other, and they form a cluster with a
//! Raft-replicated cell registry, running the bundled SDN applications.
//!
//! ```sh
//! # A three-hive cluster on localhost:
//! beehive-node --id 1 --listen 127.0.0.1:7001 \
//!     --peer 2=127.0.0.1:7002 --peer 3=127.0.0.1:7003 --voters 3 &
//! beehive-node --id 2 --listen 127.0.0.1:7002 \
//!     --peer 1=127.0.0.1:7001 --peer 3=127.0.0.1:7003 --voters 3 &
//! beehive-node --id 3 --listen 127.0.0.1:7003 \
//!     --peer 1=127.0.0.1:7001 --peer 2=127.0.0.1:7002 --voters 3 &
//! ```
//!
//! Options:
//!
//! * `--id N` — this hive's id (1-based; required)
//! * `--listen ADDR` — TCP listen address (required)
//! * `--peer ID=ADDR` — repeatable; every other hive in the cluster
//! * `--join ID=ADDR` — join a *running* cluster through the named member:
//!   the hive boots as a non-voting learner, catches up on the registry
//!   log, then asks for promotion to voter; every peer adds it at runtime.
//!   List further members with `--peer` as usual. `--voters` should name
//!   the existing cluster's voter count (default: all listed peers)
//! * `--drain` — start draining immediately after boot (testing); in normal
//!   operation send the process SIGTERM instead: the hive evacuates its
//!   bees, flushes its outbox, steps down voter → learner → removed and
//!   exits cleanly
//! * `--voters K` — registry Raft voters (the first K ids; default: all)
//! * `--replication R` — colony replication factor (default 1 = off)
//! * `--workers N` — executor worker threads; disjoint-colony bees run
//!   concurrently when N > 1 (default 1 = sequential)
//! * `--apps LIST` — comma-separated: `nib,rib,paths,vnet,learning-switch,discovery` (default: all)
//! * `--stats-every SECS` — print instrumentation analytics every N seconds (default 10; 0 = off)
//! * `--status-addr ADDR` — serve the live introspection plane over HTTP:
//!   `GET /metrics` (Prometheus), `/healthz`, `/events?n=K` (flight-recorder
//!   journal), `/trace/<id>` (merged cluster chrome-trace), `/dlq`
//! * `--metrics-dump PATH` — write Prometheus text exposition to PATH
//!   periodically (atomic tmp+rename; scrape it with `cat` or node_exporter's
//!   textfile collector). Same render path as `GET /metrics` — the file dump
//!   is the fallback for environments that cannot open a port
//! * `--dump-every SECS` — metrics dump period (default 5)
//! * `--dlq-dump PATH` — write the dead-letter queue (messages that
//!   exhausted their redelivery budget or were rejected by quarantine /
//!   mailbox overflow) to PATH periodically, one line per letter
//! * `--storage-dir PATH` — durable state directory: registry Raft log +
//!   snapshots and the reliable-channel outbox journal live here, so a
//!   SIGKILLed node restarts with its registry mirror, unacked sends and
//!   dedup state intact
//! * `--snapshot-interval N` — take a registry snapshot and compact the
//!   Raft log every N applied entries (default with `--storage-dir`: 1, so
//!   a lone restarted voter always restores from a snapshot)
//! * `--fsync always|never` — fsync policy for durable registry state
//!   (default `always`; `never` trades crash durability for throughput,
//!   e.g. in CI storms that only SIGKILL the process, not the machine)
//! * `--max-redeliveries N` — retries per failed handler delivery before a
//!   message dead-letters (default 3)
//! * `--mailbox-capacity N` — per-bee mailbox bound; 0 = unbounded (default)
//! * `--inject-fault APP:MSG:TIMES` — repeatable, testing only: fail the
//!   next TIMES deliveries of MSG (wire-name suffix match) to APP, to
//!   exercise supervised redelivery in smoke tests
//! * `--transport reactor|threaded` — which TCP engine carries inter-hive
//!   frames (default `reactor`: one non-blocking event loop, batched
//!   vectored writes). `threaded` keeps the classic
//!   one-reader-thread-per-connection engine for one more release as the
//!   differential baseline; both speak the same wire format, so a mixed
//!   cluster interoperates

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use beehive::apps::{
    discovery::discovery_app,
    learning_switch::learning_switch_app,
    nib::nib_app,
    routing::{path_app, rib_app},
    vnet::vnet_app,
};
use beehive::core::optimizer::OptimizerConfig;
use beehive::core::SystemClock;
use beehive::core::{
    collector_app, optimizer_app, render_metrics, Analytics, App, Hive, HiveConfig, HiveId,
    HiveMetrics, Mapped, StatusContext, StatusServer, TransportPreference,
};
use beehive::net::bind_tcp;

struct Args {
    id: u32,
    listen: SocketAddr,
    peers: HashMap<HiveId, SocketAddr>,
    join: bool,
    drain: bool,
    voters: Option<usize>,
    replication: usize,
    workers: usize,
    apps: Vec<String>,
    stats_every: u64,
    status_addr: Option<SocketAddr>,
    metrics_dump: Option<std::path::PathBuf>,
    dump_every: u64,
    dlq_dump: Option<std::path::PathBuf>,
    storage_dir: Option<std::path::PathBuf>,
    snapshot_interval: Option<u64>,
    fsync: beehive::core::FsyncPolicy,
    max_redeliveries: Option<u32>,
    mailbox_capacity: Option<usize>,
    inject_faults: Vec<(String, String, u32)>,
    transport: TransportPreference,
}

fn usage() -> ! {
    eprintln!(
        "usage: beehive-node --id N --listen ADDR [--peer ID=ADDR]... [--join ID=ADDR] \
         [--drain] [--voters K] \
         [--replication R] [--workers N] [--apps a,b,c] [--stats-every SECS] \
         [--status-addr ADDR] [--metrics-dump PATH] [--dump-every SECS] [--dlq-dump PATH] \
         [--storage-dir PATH] [--snapshot-interval N] [--fsync always|never] \
         [--max-redeliveries N] [--mailbox-capacity N] \
         [--inject-fault APP:MSG:TIMES] [--transport reactor|threaded]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut id = None;
    let mut listen = None;
    let mut peers = HashMap::new();
    let mut join = false;
    let mut drain = false;
    let mut voters = None;
    let mut replication = 1;
    let mut workers = 1usize;
    let mut apps: Vec<String> = [
        "nib",
        "rib",
        "paths",
        "vnet",
        "learning-switch",
        "discovery",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut stats_every = 10;
    let mut status_addr = None;
    let mut metrics_dump = None;
    let mut dump_every = 5;
    let mut dlq_dump = None;
    let mut storage_dir = None;
    let mut snapshot_interval = None;
    let mut fsync = beehive::core::FsyncPolicy::Always;
    let mut max_redeliveries = None;
    let mut mailbox_capacity = None;
    let mut inject_faults = Vec::new();
    let mut transport = TransportPreference::default();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--id" => id = Some(val().parse().unwrap_or_else(|_| usage())),
            "--listen" => listen = Some(val().parse().unwrap_or_else(|_| usage())),
            "--peer" => {
                let v = val();
                let (pid, addr) = v.split_once('=').unwrap_or_else(|| usage());
                peers.insert(
                    HiveId(pid.parse().unwrap_or_else(|_| usage())),
                    addr.parse().unwrap_or_else(|_| usage()),
                );
            }
            "--join" => {
                // The join target is just a peer we also bootstrap through.
                let v = val();
                let (pid, addr) = v.split_once('=').unwrap_or_else(|| usage());
                peers.insert(
                    HiveId(pid.parse().unwrap_or_else(|_| usage())),
                    addr.parse().unwrap_or_else(|_| usage()),
                );
                join = true;
            }
            "--drain" => drain = true,
            "--voters" => voters = Some(val().parse().unwrap_or_else(|_| usage())),
            "--replication" => replication = val().parse().unwrap_or_else(|_| usage()),
            "--workers" => workers = val().parse::<usize>().unwrap_or_else(|_| usage()).max(1),
            "--apps" => apps = val().split(',').map(|s| s.trim().to_string()).collect(),
            "--stats-every" => stats_every = val().parse().unwrap_or_else(|_| usage()),
            "--status-addr" => status_addr = Some(val().parse().unwrap_or_else(|_| usage())),
            "--metrics-dump" => metrics_dump = Some(std::path::PathBuf::from(val())),
            "--dump-every" => dump_every = val().parse::<u64>().unwrap_or_else(|_| usage()).max(1),
            "--dlq-dump" => dlq_dump = Some(std::path::PathBuf::from(val())),
            "--storage-dir" => storage_dir = Some(std::path::PathBuf::from(val())),
            "--snapshot-interval" => {
                snapshot_interval = Some(val().parse::<u64>().unwrap_or_else(|_| usage()).max(1))
            }
            "--fsync" => {
                fsync = match val().as_str() {
                    "always" => beehive::core::FsyncPolicy::Always,
                    "never" => beehive::core::FsyncPolicy::Never,
                    _ => usage(),
                }
            }
            "--max-redeliveries" => {
                max_redeliveries = Some(val().parse().unwrap_or_else(|_| usage()))
            }
            "--mailbox-capacity" => {
                mailbox_capacity = Some(val().parse().unwrap_or_else(|_| usage()))
            }
            "--inject-fault" => {
                let v = val();
                let parts: Vec<&str> = v.splitn(3, ':').collect();
                if parts.len() != 3 {
                    usage();
                }
                inject_faults.push((
                    parts[0].to_string(),
                    parts[1].to_string(),
                    parts[2].parse().unwrap_or_else(|_| usage()),
                ));
            }
            "--transport" => transport = val().parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    Args {
        id: id.unwrap_or_else(|| usage()),
        listen: listen.unwrap_or_else(|| usage()),
        peers,
        join,
        drain,
        voters,
        replication,
        workers,
        apps,
        stats_every,
        status_addr,
        metrics_dump,
        dump_every,
        dlq_dump,
        storage_dir,
        snapshot_interval,
        fsync,
        max_redeliveries,
        mailbox_capacity,
        inject_faults,
        transport,
    }
}

/// Set by `--drain` at boot or by SIGTERM at runtime; `run_elastic` notices
/// the flip and walks the hive through evacuation → demotion → removal.
static DRAIN: AtomicBool = AtomicBool::new(false);

/// Routes SIGTERM to the drain flag, so `kill <pid>` asks the hive to leave
/// the cluster cleanly instead of dying with its bees. Raw `signal(2)`
/// through the C ABI keeps the binary dependency-free; flipping a relaxed
/// atomic is async-signal-safe.
#[cfg(unix)]
fn install_sigterm_drain() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_sigterm(_signum: i32) {
        DRAIN.store(true, Ordering::Relaxed);
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm as extern "C" fn(i32) as usize);
    }
}

fn main() {
    let args = parse_args();
    let me = HiveId(args.id);

    let (transport, advertise, tcp_counters) =
        bind_tcp(args.transport, me, args.listen, args.peers.clone()).unwrap_or_else(|e| {
            eprintln!("failed to bind {}: {e}", args.listen);
            std::process::exit(1);
        });
    eprintln!(
        "hive {me} listening on {advertise} ({} transport)",
        args.transport.label()
    );

    let mut all: Vec<HiveId> = args
        .peers
        .keys()
        .copied()
        .chain(std::iter::once(me))
        .collect();
    all.sort();
    // A joiner must boot outside the voter set (a learner): by default the
    // existing members — everyone but us — are the voters.
    let default_voters = if args.join { all.len() - 1 } else { all.len() };
    let voters = args.voters.unwrap_or(default_voters).min(all.len());
    let mut cfg = if all.len() == 1 {
        HiveConfig::standalone(me)
    } else {
        HiveConfig::clustered(me, all.clone(), voters)
    };
    cfg.replication_factor = args.replication;
    cfg.workers = args.workers;
    if let Some(dir) = &args.storage_dir {
        cfg.registry_storage_dir = Some(dir.clone());
        // A lone restarted voter can only restore its registry mirror from a
        // snapshot (the commit index is volatile), so snapshot every event
        // unless the operator asked for a wider interval.
        cfg.snapshot_interval = args.snapshot_interval.unwrap_or(1);
        cfg.fsync = args.fsync;
        eprintln!(
            "durable state (registry + outbox) -> {} (snapshot every {} applied, fsync {})",
            dir.display(),
            cfg.snapshot_interval,
            match cfg.fsync {
                beehive::core::FsyncPolicy::Always => "always",
                beehive::core::FsyncPolicy::Never => "never",
            }
        );
    }
    if let Some(n) = args.max_redeliveries {
        cfg.max_redeliveries = n;
    }
    if let Some(n) = args.mailbox_capacity {
        cfg.mailbox_capacity = n;
    }
    cfg.transport = args.transport;

    let mut hive = Hive::new(cfg, Arc::new(SystemClock::new()), transport);

    for app in &args.apps {
        match app.as_str() {
            "nib" => hive.install(nib_app()),
            "rib" => hive.install(rib_app()),
            "paths" => hive.install(path_app()),
            "vnet" => hive.install(vnet_app()),
            "learning-switch" => hive.install(learning_switch_app()),
            "discovery" => hive.install(discovery_app()),
            other => {
                eprintln!("unknown app {other:?}");
                std::process::exit(2);
            }
        }
    }
    for (app, msg, times) in &args.inject_faults {
        hive.inject_handler_fault(app, msg, *times);
        eprintln!("[fault] armed: next {times} deliveries of {msg} to {app} fail");
    }

    // Platform apps: metrics collection + placement optimization.
    let instr = hive.instrumentation();
    hive.install(collector_app(instr.clone()));
    hive.install(optimizer_app(OptimizerConfig::default(), 10));
    eprintln!(
        "installed apps: {:?} + beehive.collector + beehive.optimizer; voters={voters} \
         replication={}",
        args.apps, args.replication
    );

    // SIGTERM → drain; the stop flag remains for embedders and the dump
    // threads (Ctrl-C still kills the process the blunt way).
    #[cfg(unix)]
    install_sigterm_drain();
    let stop = Arc::new(AtomicBool::new(false));

    if args.join {
        // Boot as a learner and announce ourselves to the running cluster;
        // peers learn our address from the announcement and add us live.
        hive.begin_join(&advertise.to_string());
        eprintln!("hive {me} joining the cluster as a learner (advertising {advertise})");
    }
    if args.drain {
        DRAIN.store(true, Ordering::Relaxed);
        eprintln!("hive {me} will drain immediately after boot (--drain)");
    }

    // Prometheus exposition: a local-singleton exporter app folds the
    // collector's per-window reports into an Analytics store, shared by the
    // status server's GET /metrics and the --metrics-dump thread (one render
    // path, two transports).
    let analytics = if args.metrics_dump.is_some() || args.status_addr.is_some() {
        let analytics = Arc::new(std::sync::Mutex::new(Analytics::new()));
        let sink = analytics.clone();
        hive.install(
            App::builder("beehive.exporter")
                .handle::<HiveMetrics>(
                    |_m| Mapped::LocalSingleton,
                    move |m, _ctx| {
                        sink.lock().unwrap().ingest(m);
                        Ok(())
                    },
                )
                .build(),
        );
        Some(analytics)
    } else {
        None
    };

    // The dump thread renders to the target file (tmp + rename, so scrapers
    // never see a torn write).
    if let Some(path) = args.metrics_dump.clone() {
        let analytics = analytics.clone().expect("exporter installed");
        let stop2 = stop.clone();
        let every = args.dump_every;
        let counters = tcp_counters.clone();
        std::thread::Builder::new()
            .name("bh-metrics-dump".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    std::thread::sleep(std::time::Duration::from_secs(every));
                    let snap = counters.snapshot();
                    let text = render_metrics(&analytics.lock().unwrap(), Some(&snap));
                    let tmp = path.with_extension("prom.tmp");
                    let ok = std::fs::write(&tmp, &text)
                        .and_then(|()| std::fs::rename(&tmp, &path))
                        .is_ok();
                    if !ok {
                        eprintln!("[metrics] failed to write {}", path.display());
                    }
                }
            })
            .expect("spawn metrics dump thread");
        eprintln!(
            "metrics exposition -> {} every {every}s",
            args.metrics_dump.as_ref().unwrap().display()
        );
    }

    // Live introspection plane: /metrics, /healthz, /events, /trace/<id>,
    // /dlq over plain HTTP/1.0.
    let _status_server = args.status_addr.map(|addr| {
        let handle = hive.handle();
        let ctx = StatusContext {
            analytics: analytics.clone().expect("exporter installed"),
            transport: Some(tcp_counters.clone()),
            dead_letters: hive.dead_letters(),
            events: hive.events(),
            tracer: hive.tracer(),
            trace_hub: hive.trace_hub(),
            nudge: Some(Arc::new(move || handle.nudge())),
            lifecycle: Some(hive.lifecycle()),
        };
        let server = StatusServer::bind(addr, ctx).unwrap_or_else(|e| {
            eprintln!("failed to bind status server on {addr}: {e}");
            std::process::exit(1);
        });
        eprintln!("status endpoint on http://{}", server.local_addr());
        server
    });

    // Dead-letter dump: a periodic human-readable snapshot of the messages
    // that exhausted their redelivery budget or were rejected at admission
    // (quarantine / mailbox overflow). Same tmp+rename discipline as the
    // metrics dump.
    if let Some(path) = args.dlq_dump.clone() {
        let dlq = hive.dead_letters();
        let stop2 = stop.clone();
        let every = args.dump_every;
        std::thread::Builder::new()
            .name("bh-dlq-dump".into())
            .spawn(move || {
                use std::fmt::Write;
                while !stop2.load(Ordering::Relaxed) {
                    std::thread::sleep(std::time::Duration::from_secs(every));
                    let letters = dlq.snapshot();
                    let mut text = format!(
                        "# dead letters: {} retained, {} recorded\n",
                        letters.len(),
                        dlq.recorded()
                    );
                    for l in &letters {
                        writeln!(
                            text,
                            "{}ms app={} bee={} handler={:?} msg={} kind={} attempts={} \
                             trace={:#x} detail={:?}",
                            l.recorded_ms,
                            l.app,
                            l.bee,
                            l.handler,
                            l.msg_type,
                            l.kind,
                            l.attempts,
                            l.trace_id,
                            l.detail
                        )
                        .unwrap();
                    }
                    let tmp = path.with_extension("dlq.tmp");
                    let ok = std::fs::write(&tmp, &text)
                        .and_then(|()| std::fs::rename(&tmp, &path))
                        .is_ok();
                    if !ok {
                        eprintln!("[dlq] failed to write {}", path.display());
                    }
                }
            })
            .expect("spawn dlq dump thread");
        eprintln!(
            "dead-letter dump -> {} every {}s",
            args.dlq_dump.as_ref().unwrap().display(),
            args.dump_every
        );
    }

    // Periodic analytics printer.
    if args.stats_every > 0 {
        let stop2 = stop.clone();
        let every = args.stats_every;
        std::thread::Builder::new()
            .name("bh-stats".into())
            .spawn(move || {
                // Windows come from the collector app in-process; here we
                // simply snapshot the local instrumentation store.
                while !stop2.load(Ordering::Relaxed) {
                    std::thread::sleep(std::time::Duration::from_secs(every));
                    let snapshot = instr.lock().clone();
                    let total_msgs: u64 = snapshot.bees.values().map(|b| b.msgs_in).sum();
                    eprintln!(
                        "[stats] {} local bees instrumented, {} msgs this window",
                        snapshot.bees.len(),
                        total_msgs
                    );
                }
            })
            .expect("spawn stats thread");
    }

    eprintln!("hive {me} running; SIGTERM to drain, Ctrl-C to stop");
    hive.run_elastic(&stop, &DRAIN);
    stop.store(true, Ordering::Relaxed);
    let app_names: Vec<String> = hive.apps().iter().map(|a| a.name().clone()).collect();
    let owned_cells: usize = app_names
        .iter()
        .flat_map(|name| hive.local_bees(name))
        .map(|(_, cells)| cells)
        .sum();
    eprintln!(
        "hive {me} exited as {} with {owned_cells} owned cell(s)",
        hive.lifecycle().stage().label()
    );
}
