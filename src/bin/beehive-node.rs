//! `beehive-node` — run one Beehive hive over TCP.
//!
//! A minimal production entry point: start N of these (one per machine or
//! port), point them at each other, and they form a cluster with a
//! Raft-replicated cell registry, running the bundled SDN applications.
//!
//! ```sh
//! # A three-hive cluster on localhost:
//! beehive-node --id 1 --listen 127.0.0.1:7001 \
//!     --peer 2=127.0.0.1:7002 --peer 3=127.0.0.1:7003 --voters 3 &
//! beehive-node --id 2 --listen 127.0.0.1:7002 \
//!     --peer 1=127.0.0.1:7001 --peer 3=127.0.0.1:7003 --voters 3 &
//! beehive-node --id 3 --listen 127.0.0.1:7003 \
//!     --peer 1=127.0.0.1:7001 --peer 2=127.0.0.1:7002 --voters 3 &
//! ```
//!
//! Options:
//!
//! * `--id N` — this hive's id (1-based; required)
//! * `--listen ADDR` — TCP listen address (required)
//! * `--peer ID=ADDR` — repeatable; every other hive in the cluster
//! * `--voters K` — registry Raft voters (the first K ids; default: all)
//! * `--replication R` — colony replication factor (default 1 = off)
//! * `--workers N` — executor worker threads; disjoint-colony bees run
//!   concurrently when N > 1 (default 1 = sequential)
//! * `--apps LIST` — comma-separated: `nib,rib,paths,vnet,learning-switch,discovery` (default: all)
//! * `--stats-every SECS` — print instrumentation analytics every N seconds (default 10; 0 = off)

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use beehive::apps::{
    discovery::discovery_app,
    learning_switch::learning_switch_app,
    nib::nib_app,
    routing::{path_app, rib_app},
    vnet::vnet_app,
};
use beehive::core::optimizer::OptimizerConfig;
use beehive::core::SystemClock;
use beehive::core::{collector_app, optimizer_app, Hive, HiveConfig, HiveId};
use beehive::net::TcpTransport;

struct Args {
    id: u32,
    listen: SocketAddr,
    peers: HashMap<HiveId, SocketAddr>,
    voters: Option<usize>,
    replication: usize,
    workers: usize,
    apps: Vec<String>,
    stats_every: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: beehive-node --id N --listen ADDR [--peer ID=ADDR]... [--voters K] \
         [--replication R] [--workers N] [--apps a,b,c] [--stats-every SECS]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut id = None;
    let mut listen = None;
    let mut peers = HashMap::new();
    let mut voters = None;
    let mut replication = 1;
    let mut workers = 1usize;
    let mut apps: Vec<String> = [
        "nib",
        "rib",
        "paths",
        "vnet",
        "learning-switch",
        "discovery",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut stats_every = 10;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--id" => id = Some(val().parse().unwrap_or_else(|_| usage())),
            "--listen" => listen = Some(val().parse().unwrap_or_else(|_| usage())),
            "--peer" => {
                let v = val();
                let (pid, addr) = v.split_once('=').unwrap_or_else(|| usage());
                peers.insert(
                    HiveId(pid.parse().unwrap_or_else(|_| usage())),
                    addr.parse().unwrap_or_else(|_| usage()),
                );
            }
            "--voters" => voters = Some(val().parse().unwrap_or_else(|_| usage())),
            "--replication" => replication = val().parse().unwrap_or_else(|_| usage()),
            "--workers" => workers = val().parse::<usize>().unwrap_or_else(|_| usage()).max(1),
            "--apps" => apps = val().split(',').map(|s| s.trim().to_string()).collect(),
            "--stats-every" => stats_every = val().parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    Args {
        id: id.unwrap_or_else(|| usage()),
        listen: listen.unwrap_or_else(|| usage()),
        peers,
        voters,
        replication,
        workers,
        apps,
        stats_every,
    }
}

fn main() {
    let args = parse_args();
    let me = HiveId(args.id);

    let transport = TcpTransport::bind(me, args.listen, args.peers.clone()).unwrap_or_else(|e| {
        eprintln!("failed to bind {}: {e}", args.listen);
        std::process::exit(1);
    });
    eprintln!("hive {me} listening on {}", transport.local_addr());

    let mut all: Vec<HiveId> = args
        .peers
        .keys()
        .copied()
        .chain(std::iter::once(me))
        .collect();
    all.sort();
    let voters = args.voters.unwrap_or(all.len()).min(all.len());
    let mut cfg = if all.len() == 1 {
        HiveConfig::standalone(me)
    } else {
        HiveConfig::clustered(me, all.clone(), voters)
    };
    cfg.replication_factor = args.replication;
    cfg.workers = args.workers;

    let mut hive = Hive::new(cfg, Arc::new(SystemClock::new()), Box::new(transport));

    for app in &args.apps {
        match app.as_str() {
            "nib" => hive.install(nib_app()),
            "rib" => hive.install(rib_app()),
            "paths" => hive.install(path_app()),
            "vnet" => hive.install(vnet_app()),
            "learning-switch" => hive.install(learning_switch_app()),
            "discovery" => hive.install(discovery_app()),
            other => {
                eprintln!("unknown app {other:?}");
                std::process::exit(2);
            }
        }
    }
    // Platform apps: metrics collection + placement optimization.
    let instr = hive.instrumentation();
    hive.install(collector_app(instr.clone()));
    hive.install(optimizer_app(OptimizerConfig::default(), 10));
    eprintln!(
        "installed apps: {:?} + beehive.collector + beehive.optimizer; voters={voters} \
         replication={}",
        args.apps, args.replication
    );

    // Ctrl-C → graceful stop.
    let stop = Arc::new(AtomicBool::new(false));

    // Periodic analytics printer.
    if args.stats_every > 0 {
        let stop2 = stop.clone();
        let every = args.stats_every;
        std::thread::Builder::new()
            .name("bh-stats".into())
            .spawn(move || {
                // Windows come from the collector app in-process; here we
                // simply snapshot the local instrumentation store.
                while !stop2.load(Ordering::Relaxed) {
                    std::thread::sleep(std::time::Duration::from_secs(every));
                    let snapshot = instr.lock().clone();
                    let total_msgs: u64 = snapshot.bees.values().map(|b| b.msgs_in).sum();
                    eprintln!(
                        "[stats] {} local bees instrumented, {} msgs this window",
                        snapshot.bees.len(),
                        total_msgs
                    );
                }
            })
            .expect("spawn stats thread");
    }

    eprintln!("hive {me} running; Ctrl-C to stop");
    hive.run(&stop);
}
