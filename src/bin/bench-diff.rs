//! `bench-diff` — the bench-regression gate behind the CI `bench-gate` job.
//!
//! Compares a freshly produced `BENCH_*.json` summary against the committed
//! baseline and fails (exit 1) when a tracked metric regresses by more than
//! the threshold (default 15%).
//!
//! ```text
//! bench-diff <baseline.json> <current.json> [--threshold 0.15] [--all]
//! ```
//!
//! Tracked metrics are the machine-independent ratios — keys whose flattened
//! path contains `speedup` — because absolute msgs/sec numbers vary with the
//! CI runner's hardware while same-process speedup ratios do not. `--all`
//! additionally gates every shared numeric metric (useful on a dedicated,
//! stable bench machine). Non-tracked metrics are still printed with their
//! deltas for the PR log.
//!
//! Skip paths (exit 0, so the gate never blocks bootstrapping):
//! * the baseline file does not exist yet — first run on a fresh trajectory;
//! * the baseline has `"provisional": true` — a seeded estimate that has not
//!   been replaced by a CI-produced measurement yet. This skip prints a loud
//!   one-line `WARNING:` naming the skipped baseline; the CI bench-gate job
//!   greps that line into its step summary so a silently-disarmed gate is
//!   visible on the PR.
//!
//! The JSON subset parsed here is exactly what the benches emit (objects,
//! numbers, strings, booleans); the workspace deliberately has no JSON
//! dependency, so a ~hundred-line reader keeps the gate self-contained.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Flattened numeric metrics (`a.b` paths) plus boolean flags from one file.
#[derive(Default)]
struct Summary {
    numbers: BTreeMap<String, f64>,
    bools: BTreeMap<String, bool>,
}

/// Minimal JSON reader over the bench summaries' subset. Produces flattened
/// dotted paths for nested objects; arrays get numeric path segments.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    // The benches never emit escapes beyond these.
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(other) => out.push(other as char),
                        None => return Err(self.error("unterminated escape")),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_value(&mut self, path: &str, out: &mut Summary) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.parse_object(path, out),
            Some(b'[') => self.parse_array(path, out),
            Some(b'"') => {
                self.parse_string()?;
                Ok(())
            }
            Some(b't') => self.parse_keyword("true", path, out, Some(true)),
            Some(b'f') => self.parse_keyword("false", path, out, Some(false)),
            Some(b'n') => self.parse_keyword("null", path, out, None),
            Some(_) => self.parse_number(path, out),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(
        &mut self,
        word: &str,
        path: &str,
        out: &mut Summary,
        flag: Option<bool>,
    ) -> Result<(), String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            if let Some(b) = flag {
                out.bools.insert(path.to_string(), b);
            }
            Ok(())
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn parse_number(&mut self, path: &str, out: &mut Summary) -> Result<(), String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        let value: f64 = text
            .parse()
            .map_err(|_| self.error(&format!("invalid number '{text}'")))?;
        out.numbers.insert(path.to_string(), value);
        Ok(())
    }

    fn parse_object(&mut self, path: &str, out: &mut Summary) -> Result<(), String> {
        self.expect(b'{')?;
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let child = if path.is_empty() {
                key
            } else {
                format!("{path}.{key}")
            };
            self.parse_value(&child, out)?;
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self, path: &str, out: &mut Summary) -> Result<(), String> {
        self.expect(b'[')?;
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        let mut idx = 0usize;
        loop {
            self.parse_value(&format!("{path}.{idx}"), out)?;
            idx += 1;
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }
}

fn parse_summary(text: &str) -> Result<Summary, String> {
    let mut out = Summary::default();
    let mut p = Parser::new(text);
    p.parse_value("", &mut out)?;
    p.skip_ws();
    Ok(out)
}

/// Whether a larger value of this metric is better.
fn higher_is_better(key: &str) -> bool {
    key.contains("speedup") || key.contains("_per_sec")
}

/// Whether a smaller value of this metric is better.
fn lower_is_better(key: &str) -> bool {
    key.ends_with("_ns") || key.ends_with("_us") || key.ends_with("_ms") || key.contains("_ns.")
}

/// Whether the metric participates in the gate by default.
fn tracked(key: &str) -> bool {
    key.contains("speedup")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut threshold = 0.15f64;
    let mut gate_all = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threshold" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t > 0.0 => threshold = t,
                _ => {
                    eprintln!("bench-diff: --threshold needs a positive number");
                    return ExitCode::from(2);
                }
            },
            "--all" => gate_all = true,
            "--help" | "-h" => {
                println!(
                    "usage: bench-diff <baseline.json> <current.json> \
                     [--threshold 0.15] [--all]"
                );
                return ExitCode::SUCCESS;
            }
            other => paths.push(other),
        }
    }
    let [baseline_path, current_path] = paths[..] else {
        eprintln!("usage: bench-diff <baseline.json> <current.json> [--threshold 0.15] [--all]");
        return ExitCode::from(2);
    };

    // Skip path 1: no baseline yet — the trajectory starts with this run.
    let baseline_text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(_) => {
            println!("bench-diff: no baseline at {baseline_path} — skipping gate (first run)");
            return ExitCode::SUCCESS;
        }
    };
    let current_text = match std::fs::read_to_string(current_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench-diff: cannot read current summary {current_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline = match parse_summary(&baseline_text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench-diff: malformed baseline {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let current = match parse_summary(&current_text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench-diff: malformed current summary {current_path}: {e}");
            return ExitCode::from(2);
        }
    };

    // Skip path 2: the baseline is a seeded estimate, not a measurement.
    // The warning is deliberately loud and one-line so CI can grep it into
    // the job summary — a skipped gate must never pass silently.
    if baseline.bools.get("provisional").copied().unwrap_or(false) {
        println!(
            "bench-diff: WARNING: gate SKIPPED for provisional baseline(s): {baseline_path} \
             (seeded estimate, not a CI measurement — no regression check was performed)"
        );
        println!("current metrics:");
        for (key, value) in &current.numbers {
            println!("  {key} = {value}");
        }
        return ExitCode::SUCCESS;
    }

    let mut regressions: Vec<String> = Vec::new();
    println!(
        "bench-diff: {current_path} vs baseline {baseline_path} (threshold {:.0}%)",
        threshold * 100.0
    );
    for (key, &base) in &baseline.numbers {
        let Some(&cur) = current.numbers.get(key) else {
            println!("  {key}: {base} -> (missing in current)");
            continue;
        };
        let delta = if base.abs() > f64::EPSILON {
            (cur - base) / base.abs()
        } else {
            0.0
        };
        let gated = gate_all || tracked(key);
        let regressed = if higher_is_better(key) {
            delta < -threshold
        } else if lower_is_better(key) {
            delta > threshold
        } else {
            false
        };
        let marker = match (gated, regressed) {
            (true, true) => "REGRESSED",
            (true, false) => "ok",
            (false, _) => "info",
        };
        println!(
            "  {key}: {base} -> {cur} ({:+.1}%) [{marker}]",
            delta * 100.0
        );
        if gated && regressed {
            regressions.push(format!("{key}: {base} -> {cur} ({:+.1}%)", delta * 100.0));
        }
    }
    for key in current.numbers.keys() {
        if !baseline.numbers.contains_key(key) {
            println!("  {key}: (new metric) = {}", current.numbers[key]);
        }
    }

    if regressions.is_empty() {
        println!(
            "bench-diff: no tracked metric regressed more than {:.0}%",
            threshold * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench-diff: {} tracked metric(s) regressed more than {:.0}%:",
            regressions.len(),
            threshold * 100.0
        );
        for r in &regressions {
            eprintln!("  {r}");
        }
        ExitCode::FAILURE
    }
}
