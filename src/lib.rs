#![warn(missing_docs)]

//! **Beehive** — a distributed SDN control platform with a programming
//! abstraction that is almost identical to a centralized controller.
//!
//! This is the facade crate: it re-exports the whole workspace so examples
//! and downstream users can depend on a single crate.
//!
//! | Module | Crate | What it is |
//! |---|---|---|
//! | [`core`] | `beehive-core` | The platform: apps, bees, hives, registry, migration, instrumentation, optimizer, feedback |
//! | [`wire`] | `beehive-wire` | The binary serde format used on the wire and in snapshots |
//! | [`raft`] | `beehive-raft` | Raft consensus (registry replication) |
//! | [`net`] | `beehive-net` | Transports: accounted in-memory fabric + TCP |
//! | [`openflow`] | `beehive-openflow` | OpenFlow 1.0 codec, switch model, driver app |
//! | [`sim`] | `beehive-sim` | Virtual-time cluster/network simulator |
//! | [`apps`] | `beehive-apps` | TE, discovery, learning switch, routing, NIB, vnet, Kandoo |
//!
//! See the repository README for a quick start, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for the paper-reproduction results.

pub use beehive_apps as apps;
pub use beehive_core as core;
pub use beehive_net as net;
pub use beehive_openflow as openflow;
pub use beehive_raft as raft;
pub use beehive_sim as sim;
pub use beehive_wire as wire;

/// Convenient prelude: everything an application author typically needs.
pub mod prelude {
    pub use beehive_core::prelude::*;
}
