//! The full analytics pipeline over a cluster: instrumentation → collector
//! app → HiveMetrics reports → [`beehive::core::Analytics`] — reproducing
//! the paper's provenance example: "we store that packet out messages are
//! emitted by the learning switch application upon receiving 80% of packet
//! in's" (§3).

use std::sync::Arc;

use beehive::apps::learning_switch::{learning_switch_app, LEARNING_SWITCH_APP};
use beehive::core::{collector_app, Analytics, HiveMetrics};
use beehive::openflow::driver::PacketInEvent;
use beehive::openflow::switch::encode_header_as_packet;
use beehive::prelude::*;
use beehive::sim::{ClusterConfig, SimCluster};
use parking_lot::Mutex;

fn mac(n: u8) -> [u8; 6] {
    [0, 0, 0, 0, 0, n]
}

fn pkt(src: u8, dst: u8) -> Vec<u8> {
    encode_header_as_packet(&beehive::openflow::Match {
        dl_src: mac(src),
        dl_dst: mac(dst),
        ..Default::default()
    })
}

#[test]
fn collector_reports_feed_analytics_with_provenance() {
    let reports: Arc<Mutex<Vec<HiveMetrics>>> = Arc::new(Mutex::new(Vec::new()));
    let r2 = reports.clone();
    let mut c = SimCluster::new(
        ClusterConfig {
            hives: 2,
            voters: 2,
            tick_interval_ms: 1000,
            ..Default::default()
        },
        move |h| {
            h.install(learning_switch_app());
            let instr = h.instrumentation();
            h.install(collector_app(instr));
            // Capture the HiveMetrics stream the way an aggregator would.
            let r3 = r2.clone();
            h.install(
                App::builder("capture")
                    .handle::<HiveMetrics>(
                        |_m| Mapped::LocalSingleton,
                        move |m, _c| {
                            r3.lock().push(m.clone());
                            Ok(())
                        },
                    )
                    .build(),
            );
        },
    );
    c.elect_registry(120_000).unwrap();

    // 10 packet-ins per switch; with A↔B ping-pong, half the destinations
    // are known (→ rule + packet-out), half unknown (→ flood packet-out).
    // Every PacketIn yields exactly one PacketOutCmd either way.
    for switch in [1u64, 2] {
        let hive = HiveId(switch as u32);
        for i in 0..10u8 {
            let (src, dst) = if i % 2 == 0 { (0xA, 0xB) } else { (0xB, 0xA) };
            c.hive_mut(hive).emit(PacketInEvent {
                switch,
                in_port: 1 + (i % 2) as u16,
                data: pkt(src, dst),
            });
            c.advance(300, 50);
        }
    }
    // Let the per-second collectors run a few windows.
    c.advance(5_000, 50);

    let windows = reports.lock().clone();
    assert!(!windows.is_empty(), "collector windows were produced");

    let mut analytics = Analytics::new();
    for w in &windows {
        analytics.ingest(w);
    }
    let load = analytics.app(LEARNING_SWITCH_APP).expect("ls observed");
    assert_eq!(load.msgs, 20, "all packet-ins instrumented");
    assert_eq!(load.bees, 2, "one MAC-table bee per switch");

    let rows = analytics.provenance_rows();
    let out_row = rows
        .iter()
        .find(|r| r.app == LEARNING_SWITCH_APP && r.out_type == "PacketOutCmd")
        .expect("PacketIn→PacketOutCmd provenance recorded");
    assert_eq!(out_row.in_type, "PacketInEvent");
    assert!(
        (out_row.per_app_input_ratio - 1.0).abs() < 1e-9,
        "every packet-in produced a packet-out: {:?}",
        out_row
    );
    // Learned destinations also produce InstallRule provenance.
    assert!(rows
        .iter()
        .any(|r| r.app == LEARNING_SWITCH_APP && r.out_type == "InstallRule"));

    // Rendered report mentions the pipeline.
    let text = analytics.to_string();
    assert!(
        text.contains("PacketInEvent -> PacketOutCmd"),
        "report: {text}"
    );
}
