//! The §4 use-case applications running on real multi-hive clusters (not
//! just standalone hives): Kandoo two-tier, network virtualization shards,
//! and the learning switch over an OpenFlow switch fleet.

use std::sync::Arc;

use beehive::apps::kandoo::{kandoo_local_app, kandoo_root_app, KANDOO_LOCAL_APP, KANDOO_ROOT_APP};
use beehive::apps::learning_switch::{learning_switch_app, LEARNING_SWITCH_APP};
use beehive::apps::vnet::{vnet_app, AttachPort, CreateVnet, TunnelSetup, VnetPacket, VNET_APP};
use beehive::openflow::driver::{driver_app, FlowStat, InstallRule, StatReply};
use beehive::prelude::*;
use beehive::sim::{ClusterConfig, SimCluster, SwitchFleet, Topology};
use parking_lot::Mutex;

#[test]
fn kandoo_two_tier_on_three_hives() {
    let rules = Arc::new(Mutex::new(Vec::new()));
    let r2 = rules.clone();
    let mut c = SimCluster::new(
        ClusterConfig {
            hives: 3,
            voters: 3,
            ..Default::default()
        },
        move |h| {
            h.install(kandoo_local_app(10_000));
            h.install(kandoo_root_app());
            let r3 = r2.clone();
            h.install(
                App::builder("sink")
                    .handle::<InstallRule>(
                        |m| Mapped::cell("x", m.switch.to_string()),
                        move |m, ctx| {
                            r3.lock().push((m.switch, ctx.hive()));
                            Ok(())
                        },
                    )
                    .build(),
            );
        },
    );
    c.elect_registry(120_000).unwrap();

    // Stat replies arrive on each switch's own hive (as drivers would emit
    // them): local detection must stay local, escalation must centralize.
    for (i, switch) in (1..=6u64).enumerate() {
        let hive = HiveId((i % 3 + 1) as u32);
        c.hive_mut(hive).emit(StatReply {
            switch,
            flows: vec![FlowStat {
                nw_src: 1,
                nw_dst: 2,
                packets: 10,
                bytes: 50_000,
                duration_sec: 1,
            }],
        });
    }
    c.advance(8_000, 50);

    // Local detectors: one bee per switch, on the hive its reply arrived at.
    for (i, switch) in (1..=6u64).enumerate() {
        let hive = HiveId((i % 3 + 1) as u32);
        let cell = Cell::new("seen", switch.to_string());
        let mirror = c.hive(hive).registry_view();
        let bee = mirror
            .owner(KANDOO_LOCAL_APP, &cell)
            .expect("local detector exists");
        assert_eq!(
            mirror.hive_of(bee),
            Some(hive),
            "detector for {switch} stays local"
        );
    }
    // Root: exactly one bee cluster-wide, reached from all hives.
    let root_bees: usize = c
        .ids()
        .iter()
        .map(|&h| c.hive(h).local_bee_count(KANDOO_ROOT_APP))
        .sum();
    assert_eq!(root_bees, 1);
    assert_eq!(rules.lock().len(), 6, "every elephant rerouted once");
}

#[test]
fn vnet_shards_spread_and_stay_consistent_across_hives() {
    let tunnels = Arc::new(Mutex::new(Vec::new()));
    let t2 = tunnels.clone();
    let mut c = SimCluster::new(
        ClusterConfig {
            hives: 3,
            voters: 3,
            ..Default::default()
        },
        move |h| {
            h.install(vnet_app());
            let t3 = t2.clone();
            h.install(
                App::builder("sink")
                    .handle::<TunnelSetup>(
                        |m| Mapped::cell("x", m.vnet.to_string()),
                        move |m, _| {
                            t3.lock().push((m.vnet, m.src_switch, m.dst_switch));
                            Ok(())
                        },
                    )
                    .build(),
            );
        },
    );
    c.elect_registry(120_000).unwrap();

    // Each tenant provisioned through a different hive; events for the same
    // vnet arrive via *different* hives and must serialize on one shard.
    for vnet in 1..=3u64 {
        c.hive_mut(HiveId(vnet as u32)).emit(CreateVnet {
            vnet,
            tenant: format!("t{vnet}"),
        });
    }
    c.advance(4_000, 50);
    for vnet in 1..=3u64 {
        let h1 = HiveId((vnet as u32 % 3) + 1);
        let h2 = HiveId(((vnet as u32 + 1) % 3) + 1);
        c.hive_mut(h1).emit(AttachPort {
            vnet,
            switch: 10,
            port: 1,
            mac: [vnet as u8; 6],
        });
        c.hive_mut(h2).emit(AttachPort {
            vnet,
            switch: 20,
            port: 2,
            mac: [vnet as u8 + 10; 6],
        });
    }
    c.advance(4_000, 50);
    for vnet in 1..=3u64 {
        c.hive_mut(HiveId(3)).emit(VnetPacket {
            vnet,
            switch: 10,
            src_mac: [vnet as u8; 6],
            dst_mac: [vnet as u8 + 10; 6],
        });
    }
    c.advance(6_000, 50);

    let t = tunnels.lock().clone();
    assert_eq!(t.len(), 3, "one tunnel per vnet: {t:?}");
    let shard_total: usize = c
        .ids()
        .iter()
        .map(|&h| c.hive(h).local_bee_count(VNET_APP))
        .sum();
    assert_eq!(shard_total, 3, "one shard per vnet");
    // No handler errors (attach raced create etc. would show up here).
    for id in c.ids() {
        assert_eq!(c.hive(id).counters().handler_errors, 0);
    }
}

#[test]
fn learning_switch_over_fleet_on_two_hives() {
    let topo = Topology::tree(2, 2); // 3 switches
    let mut c = SimCluster::new(
        ClusterConfig {
            hives: 2,
            voters: 2,
            ..Default::default()
        },
        |_| {},
    );
    let masters = topo.assign_masters(&c.ids());
    let handles: Vec<_> = c.ids().iter().map(|&id| c.hive(id).handle()).collect();
    let fleet = Arc::new(SwitchFleet::new(
        topo.switches.iter().map(|s| (s.dpid, s.ports)),
        masters.clone(),
        handles,
    ));
    for id in c.ids() {
        let h = c.hive_mut(id);
        h.install(driver_app(fleet.clone()));
        h.install(learning_switch_app());
    }
    c.elect_registry(120_000).unwrap();
    fleet.connect_all();
    let f = fleet.clone();
    c.advance_with(3_000, 100, || f.pump());

    let mac = |n: u8| -> [u8; 6] { [0, 0, 0, 0, 0, n] };
    let hdr = |in_port: u16, src: u8, dst: u8| beehive::openflow::Match {
        in_port,
        dl_src: mac(src),
        dl_dst: mac(dst),
        ..Default::default()
    };

    // Learn on switch 2 (whichever master hive owns it): A@3 then B@4.
    fleet.inject_packet(2, &hdr(3, 0xA, 0xB), 64);
    let f = fleet.clone();
    c.advance_with(2_000, 100, || f.pump());
    fleet.inject_packet(2, &hdr(4, 0xB, 0xA), 64);
    let f = fleet.clone();
    c.advance_with(2_000, 100, || f.pump());

    assert!(fleet.flow_count(2) >= 1, "reply must program the fast path");
    // The MAC table bee lives on switch 2's master hive.
    let cell = Cell::new("macs", "2");
    let mirror = c.hive(masters[&2]).registry_view();
    let bee = mirror
        .owner(LEARNING_SWITCH_APP, &cell)
        .expect("mac table exists");
    assert_eq!(mirror.hive_of(bee), Some(masters[&2]));
}
