//! The paper's central transformation claim: "the platform automatically
//! generates the distributed version of each control application, **while
//! preserving its behavior**" (§1); "their behavior is identical to when
//! they are deployed on a centralized controller, even though they might be
//! physically distributed over different controllers" (§3).
//!
//! We run the *same application* on the *same message stream* against a
//! single standalone hive and against clusters of several sizes, and demand
//! bit-identical final application state.

use std::collections::BTreeMap;

use beehive::prelude::*;
use beehive::sim::{ClusterConfig, SimCluster};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A little bank again — deposits touch one account, transfers touch two
/// (exercising merges), and a "ledger" records the order of operations each
/// account observed (order-sensitive state, not just commutative sums).
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Op {
    Deposit { account: String, amount: u64 },
    Transfer { from: String, to: String, amount: u64 },
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct DoOp {
    seq: u64,
    op: Op,
}
beehive::core::impl_message!(DoOp);

#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct Account {
    balance: u64,
    /// Sequence numbers of operations applied to this account, in order.
    ledger: Vec<u64>,
}

fn bank() -> App {
    App::builder("bank")
        .handle::<DoOp>(
            |m| match &m.op {
                Op::Deposit { account, .. } => Mapped::cell("acct", account),
                Op::Transfer { from, to, .. } => {
                    Mapped::cells([Cell::new("acct", from), Cell::new("acct", to)])
                }
            },
            |m, ctx| {
                match &m.op {
                    Op::Deposit { account, amount } => {
                        let mut a: Account = ctx
                            .get("acct", account)
                            .map_err(|e| e.to_string())?
                            .unwrap_or_default();
                        a.balance += amount;
                        a.ledger.push(m.seq);
                        ctx.put("acct", account.clone(), &a).map_err(|e| e.to_string())?;
                    }
                    Op::Transfer { from, to, amount } => {
                        if from == to {
                            // Self-transfer: read-modify-write once.
                            let mut a: Account = ctx
                                .get("acct", from)
                                .map_err(|e| e.to_string())?
                                .unwrap_or_default();
                            a.ledger.push(m.seq);
                            ctx.put("acct", from.clone(), &a).map_err(|e| e.to_string())?;
                            return Ok(());
                        }
                        let mut f: Account = ctx
                            .get("acct", from)
                            .map_err(|e| e.to_string())?
                            .unwrap_or_default();
                        let mut t: Account =
                            ctx.get("acct", to).map_err(|e| e.to_string())?.unwrap_or_default();
                        if f.balance >= *amount {
                            f.balance -= amount;
                            t.balance += amount;
                        }
                        // The attempt is ledgered either way (deterministic).
                        f.ledger.push(m.seq);
                        t.ledger.push(m.seq);
                        ctx.put("acct", from.clone(), &f).map_err(|e| e.to_string())?;
                        ctx.put("acct", to.clone(), &t).map_err(|e| e.to_string())?;
                    }
                }
                Ok(())
            },
        )
        .build()
}

fn workload(seed: u64, n: usize) -> Vec<DoOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let accounts = ["a", "b", "c", "d", "e"];
    (0..n as u64)
        .map(|seq| {
            let op = if rng.gen_bool(0.6) {
                Op::Deposit {
                    account: accounts[rng.gen_range(0..accounts.len())].to_string(),
                    amount: rng.gen_range(1..100),
                }
            } else {
                let from = accounts[rng.gen_range(0..accounts.len())].to_string();
                let to = accounts[rng.gen_range(0..accounts.len())].to_string();
                Op::Transfer { from, to, amount: rng.gen_range(1..50) }
            };
            DoOp { seq, op }
        })
        .collect()
}

/// Runs the workload on an `n`-hive cluster, injecting every message through
/// hive 1 (a single client, so the global order is well-defined), and
/// returns the final state of every account.
fn run_on(n: usize, ops: &[DoOp]) -> BTreeMap<String, Account> {
    let mut c = SimCluster::new(
        ClusterConfig { hives: n, voters: n.min(3), ..Default::default() },
        |h| h.install(bank()),
    );
    c.elect_registry(120_000).unwrap();
    for op in ops {
        c.hive_mut(HiveId(1)).emit(op.clone());
        // Interleave stepping so routing/merges happen mid-stream.
        c.advance(200, 50);
    }
    c.advance(10_000, 50);

    let mut out = BTreeMap::new();
    for account in ["a", "b", "c", "d", "e"] {
        let cell = Cell::new("acct", account);
        for id in c.ids() {
            let mirror = c.hive(id).registry_view();
            if let Some(bee) = mirror.owner("bank", &cell) {
                if let Some(hive) = mirror.hive_of(bee) {
                    if let Some(acct) =
                        c.hive(hive).peek_state::<Account>("bank", bee, "acct", account)
                    {
                        out.insert(account.to_string(), acct);
                    }
                }
                break;
            }
        }
    }
    // Sanity: nothing was dropped or errored anywhere.
    for id in c.ids() {
        let counters = c.hive(id).counters();
        assert_eq!(counters.handler_errors, 0);
        assert_eq!(counters.dropped_orphans, 0);
        assert_eq!(counters.assign_conflicts, 0);
    }
    out
}

#[test]
fn one_vs_three_hives_identical_state() {
    let ops = workload(42, 60);
    let centralized = run_on(1, &ops);
    let distributed = run_on(3, &ops);
    assert_eq!(
        centralized, distributed,
        "3-hive execution must be behaviorally identical to 1 hive"
    );
}

#[test]
fn one_vs_five_hives_identical_state() {
    let ops = workload(7, 40);
    let centralized = run_on(1, &ops);
    let distributed = run_on(5, &ops);
    assert_eq!(centralized, distributed);
}

#[test]
fn money_is_conserved() {
    let ops = workload(99, 80);
    let state = run_on(3, &ops);
    let deposited: u64 = ops
        .iter()
        .filter_map(|o| match &o.op {
            Op::Deposit { amount, .. } => Some(*amount),
            _ => None,
        })
        .sum();
    let total: u64 = state.values().map(|a| a.balance).sum();
    assert_eq!(total, deposited, "transfers must conserve the total");
}
