//! The paper's central transformation claim: "the platform automatically
//! generates the distributed version of each control application, **while
//! preserving its behavior**" (§1); "their behavior is identical to when
//! they are deployed on a centralized controller, even though they might be
//! physically distributed over different controllers" (§3).
//!
//! We run the *same application* on the *same message stream* against a
//! single standalone hive and against clusters of several sizes, and demand
//! bit-identical final application state.

use std::collections::BTreeMap;

use beehive::prelude::*;
use beehive::sim::{ClusterConfig, SimCluster};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A little bank again — deposits touch one account, transfers touch two
/// (exercising merges), and a "ledger" records the order of operations each
/// account observed (order-sensitive state, not just commutative sums).
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Op {
    Deposit {
        account: String,
        amount: u64,
    },
    Transfer {
        from: String,
        to: String,
        amount: u64,
    },
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct DoOp {
    seq: u64,
    op: Op,
}
beehive::core::impl_message!(DoOp);

#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct Account {
    balance: u64,
    /// Sequence numbers of operations applied to this account, in order.
    ledger: Vec<u64>,
}

fn bank() -> App {
    App::builder("bank")
        .handle::<DoOp>(
            |m| match &m.op {
                Op::Deposit { account, .. } => Mapped::cell("acct", account),
                Op::Transfer { from, to, .. } => {
                    Mapped::cells([Cell::new("acct", from), Cell::new("acct", to)])
                }
            },
            |m, ctx| {
                match &m.op {
                    Op::Deposit { account, amount } => {
                        let mut a: Account = ctx
                            .get("acct", account)
                            .map_err(|e| e.to_string())?
                            .unwrap_or_default();
                        a.balance += amount;
                        a.ledger.push(m.seq);
                        ctx.put("acct", account.clone(), &a)
                            .map_err(|e| e.to_string())?;
                    }
                    Op::Transfer { from, to, amount } => {
                        if from == to {
                            // Self-transfer: read-modify-write once.
                            let mut a: Account = ctx
                                .get("acct", from)
                                .map_err(|e| e.to_string())?
                                .unwrap_or_default();
                            a.ledger.push(m.seq);
                            ctx.put("acct", from.clone(), &a)
                                .map_err(|e| e.to_string())?;
                            return Ok(());
                        }
                        let mut f: Account = ctx
                            .get("acct", from)
                            .map_err(|e| e.to_string())?
                            .unwrap_or_default();
                        let mut t: Account = ctx
                            .get("acct", to)
                            .map_err(|e| e.to_string())?
                            .unwrap_or_default();
                        if f.balance >= *amount {
                            f.balance -= amount;
                            t.balance += amount;
                        }
                        // The attempt is ledgered either way (deterministic).
                        f.ledger.push(m.seq);
                        t.ledger.push(m.seq);
                        ctx.put("acct", from.clone(), &f)
                            .map_err(|e| e.to_string())?;
                        ctx.put("acct", to.clone(), &t).map_err(|e| e.to_string())?;
                    }
                }
                Ok(())
            },
        )
        .build()
}

fn workload(seed: u64, n: usize) -> Vec<DoOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let accounts = ["a", "b", "c", "d", "e"];
    (0..n as u64)
        .map(|seq| {
            let op = if rng.gen_bool(0.6) {
                Op::Deposit {
                    account: accounts[rng.gen_range(0..accounts.len())].to_string(),
                    amount: rng.gen_range(1..100),
                }
            } else {
                let from = accounts[rng.gen_range(0..accounts.len())].to_string();
                let to = accounts[rng.gen_range(0..accounts.len())].to_string();
                Op::Transfer {
                    from,
                    to,
                    amount: rng.gen_range(1..50),
                }
            };
            DoOp { seq, op }
        })
        .collect()
}

/// Runs the workload on an `n`-hive cluster, injecting every message through
/// hive 1 (a single client, so the global order is well-defined), and
/// returns the final state of every account.
fn run_on(n: usize, ops: &[DoOp]) -> BTreeMap<String, Account> {
    let mut c = SimCluster::new(
        ClusterConfig {
            hives: n,
            voters: n.min(3),
            ..Default::default()
        },
        |h| h.install(bank()),
    );
    c.elect_registry(120_000).unwrap();
    for op in ops {
        c.hive_mut(HiveId(1)).emit(op.clone());
        // Interleave stepping so routing/merges happen mid-stream.
        c.advance(200, 50);
    }
    c.advance(10_000, 50);

    let mut out = BTreeMap::new();
    for account in ["a", "b", "c", "d", "e"] {
        let cell = Cell::new("acct", account);
        for id in c.ids() {
            let mirror = c.hive(id).registry_view();
            if let Some(bee) = mirror.owner("bank", &cell) {
                if let Some(hive) = mirror.hive_of(bee) {
                    if let Some(acct) = c
                        .hive(hive)
                        .peek_state::<Account>("bank", bee, "acct", account)
                    {
                        out.insert(account.to_string(), acct);
                    }
                }
                break;
            }
        }
    }
    // Sanity: nothing was dropped or errored anywhere.
    for id in c.ids() {
        let counters = c.hive(id).counters();
        assert_eq!(counters.handler_errors, 0);
        assert_eq!(counters.dropped_orphans, 0);
        assert_eq!(counters.assign_conflicts, 0);
    }
    out
}

/// Runs the workload on one standalone hive with `workers` executor threads
/// and `max_drain_batch` messages per sequential mailbox drain, and returns
/// (final accounts, per-bee delivered-message counts). All ops are emitted
/// up front, so every routing decision commits before any bee runs — the
/// parallel executor must then produce bit-identical state and identical
/// per-bee delivery counts regardless of worker count or batch size.
fn run_standalone(
    workers: usize,
    max_drain_batch: usize,
    ops: &[DoOp],
) -> (BTreeMap<String, Account>, BTreeMap<u64, u64>) {
    let mut cfg = HiveConfig::standalone(HiveId(1));
    cfg.tick_interval_ms = 0; // no platform ticks: the workload is the only input
    cfg.workers = workers;
    cfg.max_drain_batch = max_drain_batch;
    let mut hive = Hive::new(
        cfg,
        std::sync::Arc::new(SystemClock::new()),
        Box::new(Loopback::new(HiveId(1))),
    );
    hive.install(bank());
    for op in ops {
        hive.emit(op.clone());
    }
    hive.step_until_quiescent(1_000_000);

    let mut accounts = BTreeMap::new();
    for account in ["a", "b", "c", "d", "e"] {
        let cell = Cell::new("acct", account);
        if let Some(bee) = hive.registry_view().owner("bank", &cell) {
            if let Some(acct) = hive.peek_state::<Account>("bank", bee, "acct", account) {
                accounts.insert(account.to_string(), acct);
            }
        }
    }
    let instr = hive.instrumentation();
    let per_bee: BTreeMap<u64, u64> = instr
        .lock()
        .bees
        .iter()
        .filter(|((app, _), _)| app == "bank")
        .map(|((_, bee), stats)| (*bee, stats.msgs_in))
        .collect();
    let counters = hive.counters();
    assert_eq!(counters.handler_errors, 0);
    assert_eq!(counters.dropped_orphans, 0);
    assert_eq!(counters.assign_conflicts, 0);
    (accounts, per_bee)
}

#[test]
fn workers_one_vs_four_identical() {
    let ops = workload(123, 400);
    let (seq_accounts, seq_per_bee) = run_standalone(1, 1, &ops);
    let (par_accounts, par_per_bee) = run_standalone(4, 1, &ops);
    assert_eq!(
        seq_accounts, par_accounts,
        "workers=4 must produce bit-identical final dictionary state"
    );
    assert_eq!(
        seq_per_bee, par_per_bee,
        "workers=4 must deliver the same messages to the same bees"
    );
    assert!(
        !par_accounts.is_empty(),
        "workload must have produced state"
    );
}

/// Every bank bee's full dictionary contents, byte for byte, plus the
/// hive-level handled/error counters — the strongest observable equality
/// the audit API offers.
fn audit_bank(
    workers: usize,
    max_drain_batch: usize,
    ops: &[DoOp],
) -> (
    BTreeMap<u64, Vec<(String, Vec<(String, Vec<u8>)>)>>,
    u64,
    u64,
) {
    let mut cfg = HiveConfig::standalone(HiveId(1));
    cfg.tick_interval_ms = 0;
    cfg.workers = workers;
    cfg.max_drain_batch = max_drain_batch;
    let mut hive = Hive::new(
        cfg,
        std::sync::Arc::new(SystemClock::new()),
        Box::new(Loopback::new(HiveId(1))),
    );
    hive.install(bank());
    for op in ops {
        hive.emit(op.clone());
    }
    hive.step_until_quiescent(1_000_000);

    let mut dicts = BTreeMap::new();
    for (bee, _) in hive.local_bees("bank") {
        dicts.insert(bee.0, hive.audit_dicts("bank", bee));
    }
    let counters = hive.counters();
    (dicts, counters.handled_ok, counters.handler_errors)
}

/// The tentpole's batching claim: draining N queued envelopes inside one
/// open transaction with per-message savepoints must be observationally
/// identical to one-transaction-per-message execution — byte-identical
/// final dictionaries and identical platform counters — under both the
/// sequential executor (workers=1, where `max_drain_batch` applies) and the
/// parallel executor (workers=4, which always drains whole mailboxes).
#[test]
fn batched_drains_byte_identical_to_per_message() {
    let ops = workload(321, 400);
    let (per_msg, ok_1, err_1) = audit_bank(1, 1, &ops);
    let (batched, ok_b, err_b) = audit_bank(1, 64, &ops);
    assert_eq!(
        per_msg, batched,
        "workers=1: batched drains must produce byte-identical dictionaries"
    );
    assert_eq!(
        (ok_1, err_1),
        (ok_b, err_b),
        "workers=1: counters must match"
    );
    assert!(ok_1 > 0, "workload must have handled messages");

    let (par_batched, ok_p, err_p) = audit_bank(4, 64, &ops);
    assert_eq!(
        per_msg, par_batched,
        "workers=4: batched parallel drains must produce byte-identical dictionaries"
    );
    assert_eq!(
        (ok_1, err_1),
        (ok_p, err_p),
        "workers=4: counters must match"
    );
}

#[test]
fn parallel_stress_no_envelope_lost_or_duplicated() {
    // Many disjoint-cell bees hammered under workers=4: every key gets an
    // exact number of bumps, so any lost or double-delivered envelope shows
    // up as a wrong counter or a wrong per-bee delivery count.
    #[derive(Debug, Clone, Serialize, Deserialize)]
    struct Bump {
        key: String,
    }
    beehive::core::impl_message!(Bump);

    fn count_app() -> App {
        App::builder("count")
            .handle::<Bump>(
                |m| Mapped::cell("c", &m.key),
                |m, ctx| {
                    let cur: u64 = ctx
                        .get("c", &m.key)
                        .map_err(|e| e.to_string())?
                        .unwrap_or(0);
                    ctx.put("c", m.key.clone(), &(cur + 1))
                        .map_err(|e| e.to_string())?;
                    Ok(())
                },
            )
            .build()
    }

    const KEYS: usize = 64;
    const PER_KEY: usize = 200;
    let mut cfg = HiveConfig::standalone(HiveId(1));
    cfg.tick_interval_ms = 0;
    cfg.workers = 4;
    let mut hive = Hive::new(
        cfg,
        std::sync::Arc::new(SystemClock::new()),
        Box::new(Loopback::new(HiveId(1))),
    );
    hive.install(count_app());

    // Interleave emission with stepping so rounds run on partial batches
    // (checked-out bees receive more mail mid-round and get re-queued).
    for round in 0..PER_KEY {
        for k in 0..KEYS {
            hive.emit(Bump {
                key: format!("k{k}"),
            });
        }
        if round % 7 == 0 {
            hive.step();
        }
    }
    hive.step_until_quiescent(1_000_000);

    for k in 0..KEYS {
        let key = format!("k{k}");
        let bee = hive
            .registry_view()
            .owner("count", &Cell::new("c", &key))
            .unwrap_or_else(|| panic!("no owner for {key}"));
        let count: u64 = hive
            .peek_state("count", bee, "c", &key)
            .unwrap_or_else(|| panic!("no counter for {key}"));
        assert_eq!(count, PER_KEY as u64, "key {key}: lost or duplicated bumps");
    }
    let instr = hive.instrumentation();
    let delivered: u64 = instr
        .lock()
        .bees
        .iter()
        .filter(|((app, _), _)| app == "count")
        .map(|(_, stats)| stats.msgs_in)
        .sum();
    assert_eq!(
        delivered,
        (KEYS * PER_KEY) as u64,
        "every envelope delivered exactly once"
    );
    assert_eq!(hive.counters().handler_errors, 0);
}

#[test]
fn one_vs_three_hives_identical_state() {
    let ops = workload(42, 60);
    let centralized = run_on(1, &ops);
    let distributed = run_on(3, &ops);
    assert_eq!(
        centralized, distributed,
        "3-hive execution must be behaviorally identical to 1 hive"
    );
}

#[test]
fn one_vs_five_hives_identical_state() {
    let ops = workload(7, 40);
    let centralized = run_on(1, &ops);
    let distributed = run_on(5, &ops);
    assert_eq!(centralized, distributed);
}

/// Chaos-lite equivalence: the same seeded fault schedule (handler faults
/// only — every fault the redelivery layer fully masks) run with 1 and with
/// 4 executor workers must land on the identical final dictionary state and
/// the identical conservation counters. Parallelism may reorder work inside
/// a round, but it must not change what the application computed or what
/// the platform accounted.
#[test]
fn chaos_lite_workers_one_vs_four_equivalent() {
    use beehive::sim::chaos::{run_seed, ChaosConfig};

    let cfg = ChaosConfig {
        ticks: 30,
        quiet_ticks: 20,
        wire_faults: false,
        crashes: false,
        disk_faults: false,
        migrations: false,
        membership: false,
        min_windows: 2,
        max_windows: 4,
        ..Default::default()
    };
    for seed in [3u64, 11] {
        let seq = run_seed(
            seed,
            &ChaosConfig {
                workers: 1,
                ..cfg.clone()
            },
        );
        let par = run_seed(
            seed,
            &ChaosConfig {
                workers: 4,
                ..cfg.clone()
            },
        );
        assert!(
            seq.violations.is_empty(),
            "seed {seed}: {:?}",
            seq.violations
        );
        assert!(
            par.violations.is_empty(),
            "seed {seed}: {:?}",
            par.violations
        );
        assert_eq!(
            seq.final_left, par.final_left,
            "seed {seed}: workers=4 must produce the identical final dictionary"
        );
        assert_eq!(
            (
                seq.emits,
                seq.handled,
                seq.dead_lettered,
                seq.dropped_app,
                seq.lost
            ),
            (
                par.emits,
                par.handled,
                par.dead_lettered,
                par.dropped_app,
                par.lost
            ),
            "seed {seed}: conservation counters must match across worker counts"
        );
        assert!(
            seq.emits > 0 && seq.handled == seq.emits,
            "lossless schedule fully masked"
        );
    }
}

#[test]
fn money_is_conserved() {
    let ops = workload(99, 80);
    let state = run_on(3, &ops);
    let deposited: u64 = ops
        .iter()
        .filter_map(|o| match &o.op {
            Op::Deposit { amount, .. } => Some(*amount),
            _ => None,
        })
        .sum();
    let total: u64 = state.values().map(|a| a.balance).sum();
    assert_eq!(total, deposited, "transfers must conserve the total");
}
