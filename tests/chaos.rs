//! Chaos harness integration tests: the determinism proof (same seed →
//! byte-identical digest), a clean multi-seed sweep with every invariant
//! checker armed, conservation accounting under a crafted crash + drop
//! schedule, disk-fault restart storms with torn-tail recovery, snapshot
//! shipping to joining hives, and the negative control — a deliberately
//! injected ownership bug must be caught and minimized to a strictly
//! shorter schedule.

use beehive::sim::chaos::{
    minimize, run, run_seed, sweep, ChaosConfig, FaultKind, FaultSchedule, FaultWindow,
};

/// A scaled-down config so every test stays fast: fewer ticks, smaller
/// schedules, full fault surface.
fn small() -> ChaosConfig {
    ChaosConfig {
        ticks: 24,
        // Enough fault-free drain for a worst-case channel retransmit: the
        // backoff clamps at ~6.4 s virtual, and 28 ticks cover 7 s.
        quiet_ticks: 28,
        min_windows: 2,
        max_windows: 5,
        ..Default::default()
    }
}

/// THE determinism proof: running the same seed twice must fold to the
/// byte-identical digest — same schedule, same workload, same fabric coin
/// flips, same per-tick audits. CI's `chaos-smoke` job asserts the same
/// property across two whole process invocations.
#[test]
fn same_seed_twice_is_byte_identical() {
    let cfg = small();
    let a = run_seed(5, &cfg);
    let b = run_seed(5, &cfg);
    assert_eq!(a.schedule, b.schedule, "schedule derivation is pure");
    assert_eq!(a.digest, b.digest, "per-tick audit fold is reproducible");
    assert_eq!(a.final_left, b.final_left);
    assert_eq!(a.emits, b.emits);
    assert!(a.violations.is_empty(), "{:?}", a.violations);

    let c = run_seed(6, &cfg);
    assert_ne!(a.digest, c.digest, "different seeds diverge");
}

/// A small sweep with every fault kind enabled: all seven checkers must
/// stay green on every seed, and sweeping twice must reproduce every digest.
#[test]
fn clean_sweep_over_small_seed_range() {
    let cfg = small();
    let once = sweep(0..4, &cfg);
    assert!(
        once.failures.is_empty(),
        "clean seeds must not violate: {:?}",
        once.failures
            .iter()
            .map(|f| (f.seed, &f.violations))
            .collect::<Vec<_>>()
    );
    let twice = sweep(0..4, &cfg);
    for (a, b) in once.reports.iter().zip(&twice.reports) {
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.digest, b.digest, "seed {}: sweep is reproducible", a.seed);
    }
    assert!(once.reports.iter().all(|r| r.emits > 0));
}

/// Conservation under a crafted schedule: a heavy drop window overlapping a
/// hive crash + durable restart. Every emitted message must be accounted
/// for — handled, dead-lettered, dropped by the fabric, absorbed by the
/// crash ledger, or still queued — with nothing silently lost.
#[test]
fn conservation_holds_under_crash_and_drops() {
    let cfg = ChaosConfig {
        ticks: 30,
        quiet_ticks: 20,
        ..Default::default()
    };
    let schedule = FaultSchedule {
        seed: 42,
        ticks: cfg.ticks,
        windows: vec![
            FaultWindow {
                at: 5,
                for_ticks: 10,
                kind: FaultKind::Drop { permille: 400 },
            },
            FaultWindow {
                at: 10,
                for_ticks: 5,
                kind: FaultKind::Crash { hive: 2 },
            },
        ],
    };
    let report = run(&schedule, &cfg);
    assert!(
        report.violations.is_empty(),
        "conservation (and the other checkers) must hold: {:?}",
        report.violations
    );
    assert!(report.emits >= 60, "workload ran");
    assert!(
        report.dropped_app > 0,
        "the drop window must actually have bitten app frames"
    );
}

/// The reliable-channel guarantee: a drop/duplicate/reorder-only schedule
/// must end exactly where the fault-free run of the same seed ends — same
/// workload, same handled count, identical final dictionaries, zero losses.
/// The faults must actually bite (nonzero fabric drops and duplicates) and
/// be repaired (nonzero retransmits and suppressed duplicates).
#[test]
fn link_faults_only_matches_the_fault_free_run() {
    let cfg = ChaosConfig {
        ticks: 24,
        quiet_ticks: 32,
        ..Default::default()
    };
    let faulty = FaultSchedule {
        seed: 77,
        ticks: cfg.ticks,
        windows: vec![
            FaultWindow {
                at: 3,
                for_ticks: 8,
                kind: FaultKind::Drop { permille: 300 },
            },
            FaultWindow {
                at: 6,
                for_ticks: 8,
                kind: FaultKind::Duplicate { permille: 300 },
            },
            FaultWindow {
                at: 10,
                for_ticks: 10,
                kind: FaultKind::Reorder { permille: 500 },
            },
        ],
    };
    let baseline = FaultSchedule {
        seed: 77,
        ticks: cfg.ticks,
        windows: Vec::new(),
    };
    assert!(
        faulty.is_lossless(),
        "link faults are masked by the channel"
    );
    let a = run(&faulty, &cfg);
    let b = run(&baseline, &cfg);
    assert!(a.violations.is_empty(), "{:?}", a.violations);
    assert!(b.violations.is_empty(), "{:?}", b.violations);
    assert_eq!(a.lost, 0, "no message may be lost to link faults");
    assert_eq!(a.emits, b.emits, "same seed, same workload");
    assert_eq!(a.handled, b.handled, "every message handled exactly once");
    assert_eq!(a.final_left, b.final_left, "identical final dictionaries");
    assert!(a.dropped_app > 0, "the drop window must actually bite");
    assert!(
        a.duplicated_app > 0,
        "the duplicate window must actually bite"
    );
    assert!(a.retransmits > 0, "drops are repaired by retransmission");
    assert!(a.dups_suppressed > 0, "duplicates are absorbed by dedup");
}

/// Elastic membership under audit: a crafted churn window boots a fourth
/// hive into the running cluster (learner → voter) and drains it back out
/// mid-workload, with every invariant checker armed through scale-out and
/// scale-in. Nothing may be lost to a clean drain, and two runs of the
/// same schedule must fold to byte-identical digests.
#[test]
fn membership_churn_is_clean_and_deterministic() {
    let cfg = ChaosConfig {
        ticks: 30,
        quiet_ticks: 30,
        wire_faults: false,
        crashes: false,
        migrations: false,
        ..Default::default()
    };
    let schedule = FaultSchedule {
        seed: 21,
        ticks: cfg.ticks,
        windows: vec![FaultWindow {
            at: 4,
            for_ticks: 8,
            kind: FaultKind::MembershipChurn,
        }],
    };
    assert!(schedule.is_lossless(), "churn is not message loss");
    let a = run(&schedule, &cfg);
    assert!(
        a.violations.is_empty(),
        "checkers must stay green through join and drain: {:?}",
        a.violations
    );
    assert_eq!(a.lost, 0, "a clean drain loses nothing");
    let b = run(&schedule, &cfg);
    assert_eq!(a.digest, b.digest, "churn digests are byte-identical");
    assert_eq!(a.final_left, b.final_left);
}

/// Disk-fault chaos: a restart storm bounces one hive through repeated
/// kill/recover cycles, tearing its outbox journal's tail (a half-written
/// record, as a crash mid-append leaves) before every revival. Recovery must
/// truncate the torn tail and replay the intact prefix; all seven invariant
/// checkers must stay green through every bounce; and two runs of the same
/// schedule must fold to byte-identical digests — torn-tail recovery is
/// deterministic, not best-effort.
#[test]
fn disk_fault_storm_recovers_torn_tails_deterministically() {
    let cfg = ChaosConfig {
        ticks: 30,
        quiet_ticks: 24,
        ..Default::default()
    };
    let schedule = FaultSchedule {
        seed: 33,
        ticks: cfg.ticks,
        windows: vec![FaultWindow {
            at: 5,
            for_ticks: 8,
            kind: FaultKind::DiskFault { hive: 2 },
        }],
    };
    assert!(!schedule.is_lossless(), "a restart storm is not lossless");
    let a = run(&schedule, &cfg);
    assert!(
        a.violations.is_empty(),
        "checkers must stay green through the storm: {:?}",
        a.violations
    );
    assert!(
        a.torn_truncations > 0,
        "the torn-tail injection must actually bite (journal recovered {} times)",
        a.torn_truncations
    );
    let b = run(&schedule, &cfg);
    assert_eq!(a.digest, b.digest, "torn-tail recovery is deterministic");
    assert_eq!(a.final_left, b.final_left);
    assert_eq!(a.torn_truncations, b.torn_truncations);
}

/// Snapshot shipping under chaos: the durable cluster compacts its registry
/// log aggressively (snapshot interval 1), so a hive joining mid-run starts
/// below every peer's compaction horizon — AppendEntries cannot reach it,
/// and the only way to registry agreement is `InstallSnapshot`. The
/// registry-agreement checker then proves the snapshot-restored mirror is
/// byte-identical to its full-replay peers at every equal applied fence.
#[test]
fn compacted_cluster_ships_snapshots_to_joining_hives() {
    let cfg = ChaosConfig {
        ticks: 30,
        quiet_ticks: 30,
        wire_faults: false,
        migrations: false,
        ..Default::default()
    };
    let schedule = FaultSchedule {
        seed: 58,
        ticks: cfg.ticks,
        windows: vec![FaultWindow {
            at: 4,
            for_ticks: 10,
            kind: FaultKind::MembershipChurn,
        }],
    };
    let report = run(&schedule, &cfg);
    assert!(
        report.violations.is_empty(),
        "snapshot-restored hives must agree with full-replay peers: {:?}",
        report.violations
    );
    assert!(
        report.snapshot_installs > 0,
        "catch-up must have gone through the snapshot-shipping path"
    );
}

/// The negative control the harness is judged by: plant a deliberate
/// double-ownership bug (test-only `debug_force_own`) mid-run. The
/// ownership checker must flag it, and the minimizer must shrink the
/// schedule to a strictly shorter one that still reproduces it.
#[test]
fn injected_ownership_bug_is_caught_and_minimized() {
    let cfg = ChaosConfig {
        ticks: 20,
        quiet_ticks: 10,
        min_windows: 3,
        max_windows: 5,
        // Pure schedule around the bug: no wire faults, crashes or disk
        // faults, so the run is fast and the only possible violation is the
        // planted one.
        wire_faults: false,
        crashes: false,
        disk_faults: false,
        migrations: false,
        membership: false,
        inject_ownership_bug: true,
        ..Default::default()
    };
    let report = run_seed(9, &cfg);
    assert!(
        !report.violations.is_empty(),
        "the planted bug must be caught"
    );
    assert!(
        report.violations.iter().any(|v| v.checker == "ownership"),
        "the ownership checker specifically must flag it: {:?}",
        report.violations
    );

    let minimized = minimize(&report.schedule, &cfg);
    assert!(
        minimized.windows.len() < report.schedule.windows.len(),
        "minimization must strictly shrink the schedule ({} -> {})",
        report.schedule.windows.len(),
        minimized.windows.len()
    );
    assert!(
        minimized
            .windows
            .iter()
            .any(|w| w.kind == FaultKind::OwnershipBug),
        "the culprit window must survive minimization"
    );
    let replay = run(&minimized, &cfg);
    assert!(
        replay.violations.iter().any(|v| v.checker == "ownership"),
        "the minimized schedule still reproduces the violation"
    );
}
