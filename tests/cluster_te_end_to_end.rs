//! End-to-end integration: the decoupled TE application over the OpenFlow
//! driver, emulated switches and a Raft-registered multi-hive cluster —
//! verifying that elephant flows actually get re-routed *on the switches*.

use std::sync::Arc;

use beehive::apps::te::{decoupled_te_apps, TeConfig, TE_COLLECT_APP, TE_ROUTE_APP};
use beehive::openflow::driver::{driver_app, DRIVER_APP};
use beehive::sim::{
    generate_flows, ClusterConfig, SimCluster, SwitchFleet, Topology, WorkloadConfig,
};

struct Setup {
    cluster: SimCluster,
    fleet: Arc<SwitchFleet>,
    topo: Topology,
}

fn setup(hives: usize) -> Setup {
    let topo = Topology::tree(3, 2); // 7 switches
    let mut cluster = SimCluster::new(
        ClusterConfig {
            hives,
            voters: hives.min(3),
            ..Default::default()
        },
        |_| {},
    );
    let masters = topo.assign_masters(&cluster.ids());
    let handles: Vec<_> = cluster
        .ids()
        .iter()
        .map(|&id| cluster.hive(id).handle())
        .collect();
    let fleet = Arc::new(SwitchFleet::new(
        topo.switches.iter().map(|s| (s.dpid, s.ports)),
        masters,
        handles,
    ));
    for id in cluster.ids() {
        let hive = cluster.hive_mut(id);
        hive.install(driver_app(fleet.clone()));
        let (collect, route) = decoupled_te_apps(TeConfig {
            delta_bytes_per_sec: 50_000,
        });
        hive.install(collect);
        hive.install(route);
    }
    cluster.elect_registry(120_000).expect("registry leader");
    fleet.connect_all();
    let f = fleet.clone();
    cluster.advance_with(3_000, 100, || f.pump());
    Setup {
        cluster,
        fleet,
        topo,
    }
}

#[test]
fn elephants_get_rerouted_on_the_switches() {
    let Setup {
        mut cluster,
        fleet,
        topo,
    } = setup(3);

    let flows = generate_flows(
        &topo.dpids(),
        &WorkloadConfig {
            flows_per_switch: 10,
            ..Default::default()
        },
    );
    fleet.install_default_routes(&flows);
    let base_flows: Vec<usize> = topo.dpids().iter().map(|&d| fleet.flow_count(d)).collect();

    // Run 8 virtual seconds of traffic + stats collection.
    for _ in 0..8 {
        fleet.advance_traffic(&flows, 1);
        let f = fleet.clone();
        cluster.advance_with(1_000, 100, || f.pump());
    }

    // Every switch has 1 elephant (10 flows, 10% elephants): TE must have
    // installed one re-route rule per switch (priority 10 > default 1).
    for (i, &dpid) in topo.dpids().iter().enumerate() {
        let now = fleet.flow_count(dpid);
        assert_eq!(
            now,
            base_flows[i] + 1,
            "switch {dpid} should have exactly one TE re-route rule added"
        );
    }
}

#[test]
fn collection_bees_live_next_to_their_switches() {
    let Setup {
        mut cluster,
        fleet,
        topo,
    } = setup(3);
    let flows = generate_flows(
        &topo.dpids(),
        &WorkloadConfig {
            flows_per_switch: 5,
            ..Default::default()
        },
    );
    fleet.install_default_routes(&flows);
    for _ in 0..4 {
        fleet.advance_traffic(&flows, 1);
        let f = fleet.clone();
        cluster.advance_with(1_000, 100, || f.pump());
    }

    // Each switch's collect bee must be on the switch's master hive — the
    // same hive as its driver bee.
    let masters = topo.assign_masters(&cluster.ids());
    for (&dpid, &master) in &masters {
        let mirror = cluster.hive(master).registry_view();
        let cell = beehive::core::Cell::new("S", dpid.to_string());
        let bee = mirror
            .owner(TE_COLLECT_APP, &cell)
            .expect("collect bee exists");
        assert_eq!(
            mirror.hive_of(bee),
            Some(master),
            "switch {dpid}'s collect bee should live on its master {master}"
        );
    }
    // And the drivers as well (they were created by upstream arrival there).
    let driver_total: usize = cluster
        .ids()
        .iter()
        .map(|&h| cluster.hive(h).local_bee_count(DRIVER_APP))
        .sum();
    assert_eq!(driver_total, topo.len());
}

#[test]
fn route_app_is_a_single_bee_cluster_wide() {
    let Setup {
        mut cluster,
        fleet,
        topo,
    } = setup(3);
    let flows = generate_flows(
        &topo.dpids(),
        &WorkloadConfig {
            flows_per_switch: 10,
            ..Default::default()
        },
    );
    fleet.install_default_routes(&flows);
    for _ in 0..6 {
        fleet.advance_traffic(&flows, 1);
        let f = fleet.clone();
        cluster.advance_with(1_000, 100, || f.pump());
    }
    let route_bees: usize = cluster
        .ids()
        .iter()
        .map(|&h| cluster.hive(h).local_bee_count(TE_ROUTE_APP))
        .sum();
    assert_eq!(
        route_bees, 1,
        "whole-dict Route must collocate on exactly one bee"
    );
}

#[test]
fn no_handler_errors_or_conflicts_in_steady_state() {
    let Setup {
        mut cluster,
        fleet,
        topo,
    } = setup(2);
    let flows = generate_flows(
        &topo.dpids(),
        &WorkloadConfig {
            flows_per_switch: 5,
            ..Default::default()
        },
    );
    fleet.install_default_routes(&flows);
    for _ in 0..5 {
        fleet.advance_traffic(&flows, 1);
        let f = fleet.clone();
        cluster.advance_with(1_000, 100, || f.pump());
    }
    for id in cluster.ids() {
        let c = cluster.hive(id).counters();
        assert_eq!(c.handler_errors, 0, "{id} had handler errors");
        assert_eq!(
            c.assign_conflicts, 0,
            "{id} had out-of-cell write conflicts"
        );
        assert_eq!(c.decode_errors, 0, "{id} had decode errors");
        assert_eq!(c.dropped_orphans, 0, "{id} dropped orphaned messages");
    }
}
