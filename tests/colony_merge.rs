//! Colony merges: when a message's mapped cells bridge two existing
//! colonies — possibly on different hives — the platform must merge them
//! into one bee (paper §3: "the keys in K1 ∪ K2 are always accessed by only
//! one instance") and combine their state.

use beehive::prelude::*;
use beehive::sim::{ClusterConfig, SimCluster};
use serde::{Deserialize, Serialize};

/// Touches one account.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Deposit {
    account: String,
    amount: u64,
}
beehive::core::impl_message!(Deposit);

/// Touches TWO accounts — its mapped cells are both, forcing collocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Transfer {
    from: String,
    to: String,
    amount: u64,
}
beehive::core::impl_message!(Transfer);

fn bank() -> App {
    App::builder("bank")
        .handle::<Deposit>(
            |m| Mapped::cell("accounts", &m.account),
            |m, ctx| {
                let v: u64 = ctx
                    .get("accounts", &m.account)
                    .map_err(|e| e.to_string())?
                    .unwrap_or(0);
                ctx.put("accounts", m.account.clone(), &(v + m.amount))
                    .map_err(|e| e.to_string())
            },
        )
        .handle::<Transfer>(
            |m| Mapped::cells([Cell::new("accounts", &m.from), Cell::new("accounts", &m.to)]),
            |m, ctx| {
                let from: u64 = ctx
                    .get("accounts", &m.from)
                    .map_err(|e| e.to_string())?
                    .unwrap_or(0);
                if from < m.amount {
                    return Err(format!("insufficient funds in {}", m.from));
                }
                let to: u64 = ctx
                    .get("accounts", &m.to)
                    .map_err(|e| e.to_string())?
                    .unwrap_or(0);
                ctx.put("accounts", m.from.clone(), &(from - m.amount))
                    .map_err(|e| e.to_string())?;
                ctx.put("accounts", m.to.clone(), &(to + m.amount))
                    .map_err(|e| e.to_string())?;
                Ok(())
            },
        )
        .build()
}

fn balance(c: &SimCluster, account: &str) -> Option<u64> {
    let cell = Cell::new("accounts", account);
    for id in c.ids() {
        let mirror = c.hive(id).registry_view();
        if let Some(bee) = mirror.owner("bank", &cell) {
            let hive = mirror.hive_of(bee)?;
            return c
                .hive(hive)
                .peek_state::<u64>("bank", bee, "accounts", account);
        }
    }
    None
}

fn owner_of(c: &SimCluster, account: &str) -> (BeeId, HiveId) {
    let cell = Cell::new("accounts", account);
    let mirror = c.hive(HiveId(1)).registry_view();
    let bee = mirror.owner("bank", &cell).expect("owner exists");
    (bee, mirror.hive_of(bee).expect("hive known"))
}

#[test]
fn transfer_merges_colonies_on_one_hive() {
    let mut c = SimCluster::new(
        ClusterConfig {
            hives: 1,
            voters: 1,
            ..Default::default()
        },
        |h| h.install(bank()),
    );
    c.elect_registry(60_000).unwrap();
    c.hive_mut(HiveId(1)).emit(Deposit {
        account: "alice".into(),
        amount: 100,
    });
    c.hive_mut(HiveId(1)).emit(Deposit {
        account: "bob".into(),
        amount: 50,
    });
    c.advance(2_000, 50);
    assert_eq!(
        c.hive(HiveId(1)).local_bee_count("bank"),
        2,
        "separate colonies at first"
    );

    c.hive_mut(HiveId(1)).emit(Transfer {
        from: "alice".into(),
        to: "bob".into(),
        amount: 30,
    });
    c.advance(2_000, 50);

    assert_eq!(
        c.hive(HiveId(1)).local_bee_count("bank"),
        1,
        "colonies merged"
    );
    assert_eq!(balance(&c, "alice"), Some(70));
    assert_eq!(balance(&c, "bob"), Some(80));
    assert_eq!(
        owner_of(&c, "alice").0,
        owner_of(&c, "bob").0,
        "single owner bee"
    );
}

#[test]
fn transfer_merges_colonies_across_hives() {
    let mut c = SimCluster::new(
        ClusterConfig {
            hives: 3,
            voters: 3,
            ..Default::default()
        },
        |h| h.install(bank()),
    );
    c.elect_registry(120_000).unwrap();
    // Colonies born on different hives.
    c.hive_mut(HiveId(1)).emit(Deposit {
        account: "alice".into(),
        amount: 100,
    });
    c.hive_mut(HiveId(2)).emit(Deposit {
        account: "bob".into(),
        amount: 50,
    });
    c.advance(3_000, 50);
    let (alice_bee, alice_hive) = owner_of(&c, "alice");
    let (bob_bee, bob_hive) = owner_of(&c, "bob");
    assert_ne!(alice_bee, bob_bee);
    assert_ne!(alice_hive, bob_hive);

    // The bridging message arrives on yet another hive.
    c.hive_mut(HiveId(3)).emit(Transfer {
        from: "alice".into(),
        to: "bob".into(),
        amount: 30,
    });
    c.advance(4_000, 50);

    let (a_bee, _) = owner_of(&c, "alice");
    let (b_bee, _) = owner_of(&c, "bob");
    assert_eq!(a_bee, b_bee, "one bee owns both accounts after the merge");
    assert_eq!(
        balance(&c, "alice"),
        Some(70),
        "loser state was shipped and merged"
    );
    assert_eq!(balance(&c, "bob"), Some(80));

    // Follow-up traffic for both accounts still works.
    c.hive_mut(HiveId(2)).emit(Deposit {
        account: "alice".into(),
        amount: 1,
    });
    c.hive_mut(HiveId(1)).emit(Deposit {
        account: "bob".into(),
        amount: 1,
    });
    c.advance(3_000, 50);
    assert_eq!(balance(&c, "alice"), Some(71));
    assert_eq!(balance(&c, "bob"), Some(81));
}

#[test]
fn failed_transfer_rolls_back_atomically() {
    let mut c = SimCluster::new(
        ClusterConfig {
            hives: 1,
            voters: 1,
            ..Default::default()
        },
        |h| h.install(bank()),
    );
    c.elect_registry(60_000).unwrap();
    c.hive_mut(HiveId(1)).emit(Deposit {
        account: "alice".into(),
        amount: 10,
    });
    c.hive_mut(HiveId(1)).emit(Deposit {
        account: "bob".into(),
        amount: 0,
    });
    c.advance(2_000, 50);
    // Overdraft: the handler errors; the tx must roll back both writes.
    c.hive_mut(HiveId(1)).emit(Transfer {
        from: "alice".into(),
        to: "bob".into(),
        amount: 999,
    });
    c.advance(2_000, 50);
    assert_eq!(balance(&c, "alice"), Some(10));
    assert_eq!(balance(&c, "bob"), Some(0));
    assert_eq!(c.hive(HiveId(1)).counters().handler_errors, 1);
}

#[test]
fn chained_transfers_merge_transitively() {
    let mut c = SimCluster::new(
        ClusterConfig {
            hives: 2,
            voters: 2,
            ..Default::default()
        },
        |h| h.install(bank()),
    );
    c.elect_registry(120_000).unwrap();
    for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
        c.hive_mut(HiveId((i % 2 + 1) as u32)).emit(Deposit {
            account: name.to_string(),
            amount: 100,
        });
    }
    c.advance(3_000, 50);
    // a-b, then c-d, then b-c: everything ends in one colony.
    c.hive_mut(HiveId(1)).emit(Transfer {
        from: "a".into(),
        to: "b".into(),
        amount: 1,
    });
    c.advance(3_000, 50);
    c.hive_mut(HiveId(2)).emit(Transfer {
        from: "c".into(),
        to: "d".into(),
        amount: 2,
    });
    c.advance(3_000, 50);
    c.hive_mut(HiveId(1)).emit(Transfer {
        from: "b".into(),
        to: "c".into(),
        amount: 3,
    });
    c.advance(4_000, 50);

    let owners: Vec<BeeId> = ["a", "b", "c", "d"]
        .iter()
        .map(|k| owner_of(&c, k).0)
        .collect();
    assert!(
        owners.windows(2).all(|w| w[0] == w[1]),
        "all accounts share one bee: {owners:?}"
    );
    assert_eq!(balance(&c, "a"), Some(99)); // 100 - 1
    assert_eq!(balance(&c, "b"), Some(98)); // 100 + 1 - 3
    assert_eq!(balance(&c, "c"), Some(101)); // 100 - 2 + 3
    assert_eq!(balance(&c, "d"), Some(102)); // 100 + 2
}
