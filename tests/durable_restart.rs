//! Durable registry state: a hive that restarts with `registry_storage_dir`
//! set comes back with its Raft term, vote and registry mirror intact, and
//! the cluster keeps routing to the right colonies.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use beehive::core::{Hive, HiveConfig};
use beehive::net::TcpTransport;
use beehive::prelude::*;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Put {
    key: String,
    value: u64,
}
beehive::core::impl_message!(Put);

fn kv() -> App {
    App::builder("kv")
        .handle::<Put>(
            |m| Mapped::cell("d", &m.key),
            |m, ctx| {
                ctx.put("d", m.key.clone(), &m.value)
                    .map_err(|e| e.to_string())
            },
        )
        .build()
}

/// Builds a hive bound to a fresh TCP port with durable registry storage.
fn build_hive(
    id: HiveId,
    addr: std::net::SocketAddr,
    peers: std::collections::HashMap<HiveId, std::net::SocketAddr>,
    all: Vec<HiveId>,
    dir: &std::path::Path,
) -> Hive {
    let transport = TcpTransport::bind(id, addr, peers).unwrap();
    let mut cfg = HiveConfig::clustered(id, all, 3);
    cfg.tick_interval_ms = 0;
    cfg.raft_tick_ms = 5;
    cfg.pending_retry_ms = 200;
    cfg.registry_storage_dir = Some(dir.to_path_buf());
    // Snapshot after every applied entry so the durable state machine is
    // always current (commit index is volatile in Raft; a lone restarted
    // voter can only restore its mirror from a snapshot).
    cfg.raft.snapshot_threshold = 1;
    let mut hive = Hive::new(cfg, Arc::new(SystemClock::new()), Box::new(transport));
    hive.install(kv());
    hive
}

#[test]
fn restarted_hive_recovers_registry_from_disk() {
    let dir = std::env::temp_dir().join(format!("bh-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Fixed ports for this test (restart must rebind the same address).
    let base = 39120u16;
    let addr = |i: u32| -> std::net::SocketAddr {
        format!("127.0.0.1:{}", base + i as u16).parse().unwrap()
    };
    let all: Vec<HiveId> = (1..=3).map(HiveId).collect();
    let peers_of = |me: u32| {
        (1..=3u32)
            .filter(|&i| i != me)
            .map(|i| (HiveId(i), addr(i)))
            .collect::<std::collections::HashMap<_, _>>()
    };

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    let mut threads = Vec::new();
    for i in 1..=3u32 {
        let hive = build_hive(HiveId(i), addr(i), peers_of(i), all.clone(), &dir);
        handles.push(hive.handle());
        let s = stop.clone();
        threads.push(std::thread::spawn(move || {
            let mut hive = hive;
            hive.run(&s);
            hive
        }));
    }
    std::thread::sleep(std::time::Duration::from_millis(600));

    // Populate some keys from various hives.
    for (i, h) in handles.iter().enumerate() {
        h.emit(Put {
            key: format!("key{i}"),
            value: i as u64 * 10,
        });
    }
    std::thread::sleep(std::time::Duration::from_millis(1500));

    // Stop the whole cluster (simulating a full restart) …
    stop.store(true, Ordering::Relaxed);
    let hives: Vec<Hive> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    let bees_before: usize = hives
        .iter()
        .map(|h| h.registry_view().bee_count())
        .max()
        .unwrap();
    assert!(bees_before >= 3, "three colonies existed before restart");
    drop(hives);
    std::thread::sleep(std::time::Duration::from_millis(300));

    // … and bring one hive back alone from its durable state.
    let transport = TcpTransport::bind(HiveId(1), addr(1), peers_of(1)).expect("rebind after drop");
    let mut cfg = HiveConfig::clustered(HiveId(1), all, 3);
    cfg.tick_interval_ms = 0;
    cfg.registry_storage_dir = Some(dir.clone());
    cfg.raft.snapshot_threshold = 1;
    let mut revived = Hive::new(cfg, Arc::new(SystemClock::new()), Box::new(transport));
    revived.install(kv());
    revived.step_until_quiescent(1000);

    // Its registry mirror was restored from the on-disk snapshot (no quorum
    // needed): the colonies created before the restart are still known.
    let view = revived.registry_view();
    assert!(
        view.bee_count() >= 3,
        "registry mirror restored from durable log: {} bees",
        view.bee_count()
    );
    for i in 0..3 {
        assert!(
            view.owner("kv", &Cell::new("d", format!("key{i}")))
                .is_some(),
            "key{i} ownership survived the restart"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
