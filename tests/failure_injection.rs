//! Failure injection on the fabric: message drops, partitions and registry
//! leader loss. The platform's retry layers (Raft, pending-route
//! resubmission, orphan retries) must mask all of it.

use beehive::net::FabricFaults;
use beehive::prelude::*;
use beehive::sim::{ClusterConfig, SimCluster};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Inc {
    key: String,
}
beehive::core::impl_message!(Inc);

fn counter() -> App {
    App::builder("counter")
        .handle::<Inc>(
            |m| Mapped::cell("c", &m.key),
            |m, ctx| {
                let n: u64 = ctx
                    .get("c", &m.key)
                    .map_err(|e| e.to_string())?
                    .unwrap_or(0);
                ctx.put("c", m.key.clone(), &(n + 1))
                    .map_err(|e| e.to_string())?;
                Ok(())
            },
        )
        .build()
}

fn count_of(c: &SimCluster, key: &str) -> Option<u64> {
    let cell = Cell::new("c", key);
    for id in c.ids() {
        let mirror = c.hive(id).registry_view();
        if let Some(bee) = mirror.owner("counter", &cell) {
            let hive = mirror.hive_of(bee)?;
            return c.hive(hive).peek_state::<u64>("counter", bee, "c", key);
        }
    }
    None
}

#[test]
fn routing_survives_partition_and_heal() {
    let mut c = SimCluster::new(
        ClusterConfig {
            hives: 3,
            voters: 3,
            pending_retry_ms: 500,
            ..Default::default()
        },
        |h| h.install(counter()),
    );
    c.elect_registry(120_000).unwrap();
    c.hive_mut(HiveId(1)).emit(Inc { key: "k".into() });
    c.advance(3_000, 50);
    assert_eq!(count_of(&c, "k"), Some(1));

    // Partition hive 3 from hive 1 (where the bee lives). Messages from
    // hive 3 can't be relayed while the link is down.
    c.fabric.partition(HiveId(1), HiveId(3));
    c.hive_mut(HiveId(3)).emit(Inc { key: "k".into() });
    c.advance(2_000, 50);
    // Heal: the parked/lost relay must eventually be retried... Relays are
    // fire-and-forget, so this tests that *new* messages still work and the
    // platform did not wedge.
    c.fabric.heal();
    c.hive_mut(HiveId(3)).emit(Inc { key: "k".into() });
    c.advance(5_000, 50);
    let v = count_of(&c, "k").unwrap();
    assert!(v >= 2, "post-heal traffic must flow (got {v})");
}

#[test]
fn new_keys_route_even_with_heavy_drops() {
    let mut c = SimCluster::new(
        ClusterConfig {
            hives: 3,
            voters: 3,
            pending_retry_ms: 300,
            ..Default::default()
        },
        |h| h.install(counter()),
    );
    c.elect_registry(120_000).unwrap();
    // 20% of frames dropped: Raft retries, proposal retries and orphan
    // retries must still converge.
    c.fabric.set_faults(FabricFaults {
        drop_rate: 0.2,
        latency_ms: 0,
    });
    for i in 0..5 {
        c.hive_mut(HiveId((i % 3 + 1) as u32)).emit(Inc {
            key: format!("key{i}"),
        });
    }
    c.advance(30_000, 50);
    c.fabric.set_faults(FabricFaults::default());
    c.advance(10_000, 50);
    for i in 0..5 {
        assert_eq!(
            count_of(&c, &format!("key{i}")),
            Some(1),
            "key{i} must eventually route despite drops"
        );
    }
}

#[test]
fn registry_leader_partition_recovers() {
    let mut c = SimCluster::new(
        ClusterConfig {
            hives: 3,
            voters: 3,
            pending_retry_ms: 500,
            ..Default::default()
        },
        |h| h.install(counter()),
    );
    let leader = c.elect_registry(120_000).unwrap();
    // Cut the leader off from both followers: a new leader must emerge and
    // new keys must still become routable.
    for id in c.ids() {
        if id != leader {
            c.fabric.partition(leader, id);
        }
    }
    c.advance(10_000, 50);
    let new_leader = c
        .ids()
        .into_iter()
        .filter(|&id| id != leader)
        .find(|&id| c.hive(id).is_registry_leader());
    assert!(
        new_leader.is_some(),
        "a new registry leader must be elected"
    );

    let src = new_leader.unwrap();
    c.hive_mut(src).emit(Inc {
        key: "fresh".into(),
    });
    c.advance(10_000, 50);
    assert_eq!(
        count_of(&c, "fresh"),
        Some(1),
        "routing works under the new leader"
    );

    // Heal; the old leader rejoins as follower and sees the state.
    c.fabric.heal();
    c.advance(10_000, 50);
    let mirror = c.hive(leader).registry_view();
    assert!(
        mirror.owner("counter", &Cell::new("c", "fresh")).is_some(),
        "healed ex-leader catches up on the registry log"
    );
}

#[test]
fn latency_does_not_break_ordering() {
    let mut c = SimCluster::new(
        ClusterConfig {
            hives: 2,
            voters: 2,
            ..Default::default()
        },
        |h| h.install(counter()),
    );
    c.elect_registry(120_000).unwrap();
    c.fabric.set_faults(FabricFaults {
        drop_rate: 0.0,
        latency_ms: 120,
    });
    for _ in 0..10 {
        c.hive_mut(HiveId(2)).emit(Inc { key: "slow".into() });
        c.advance(500, 50);
    }
    c.advance(10_000, 50);
    assert_eq!(
        count_of(&c, "slow"),
        Some(10),
        "every delayed message applied exactly once"
    );
}
