//! Failure injection on the fabric and in handlers: message drops,
//! partitions, registry leader loss, handler panics and injected handler
//! errors. The platform's retry layers (Raft, pending-route resubmission,
//! orphan retries, supervised redelivery) must mask all of it; what can't be
//! masked must land in the dead-letter queue, not crash the hive.

use std::sync::Arc;

use beehive::core::{collector_app, Analytics, HiveMetrics};
use beehive::net::FabricFaults;
use beehive::prelude::*;
use beehive::sim::{ClusterConfig, SimCluster};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Inc {
    key: String,
}
beehive::core::impl_message!(Inc);

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Poison {
    key: String,
}
beehive::core::impl_message!(Poison);

/// An app whose handler panics on every delivery.
fn poison_app() -> App {
    App::builder("poison")
        .handle::<Poison>(
            |m| Mapped::cell("p", &m.key),
            |_m, _ctx| -> HandlerResult { panic!("poison pill") },
        )
        .build()
}

fn counter() -> App {
    App::builder("counter")
        .handle::<Inc>(
            |m| Mapped::cell("c", &m.key),
            |m, ctx| {
                let n: u64 = ctx
                    .get("c", &m.key)
                    .map_err(|e| e.to_string())?
                    .unwrap_or(0);
                ctx.put("c", m.key.clone(), &(n + 1))
                    .map_err(|e| e.to_string())?;
                Ok(())
            },
        )
        .build()
}

fn count_of(c: &SimCluster, key: &str) -> Option<u64> {
    let cell = Cell::new("c", key);
    for id in c.ids() {
        let mirror = c.hive(id).registry_view();
        if let Some(bee) = mirror.owner("counter", &cell) {
            let hive = mirror.hive_of(bee)?;
            return c.hive(hive).peek_state::<u64>("counter", bee, "c", key);
        }
    }
    None
}

#[test]
fn routing_survives_partition_and_heal() {
    let mut c = SimCluster::new(
        ClusterConfig {
            hives: 3,
            voters: 3,
            pending_retry_ms: 500,
            ..Default::default()
        },
        |h| h.install(counter()),
    );
    c.elect_registry(120_000).unwrap();
    c.hive_mut(HiveId(1)).emit(Inc { key: "k".into() });
    c.advance(3_000, 50);
    assert_eq!(count_of(&c, "k"), Some(1));

    // Partition hive 3 from hive 1 (where the bee lives). Messages from
    // hive 3 can't be relayed while the link is down.
    c.fabric.partition(HiveId(1), HiveId(3));
    c.hive_mut(HiveId(3)).emit(Inc { key: "k".into() });
    c.advance(2_000, 50);
    // Heal: the parked/lost relay must eventually be retried... Relays are
    // fire-and-forget, so this tests that *new* messages still work and the
    // platform did not wedge.
    c.fabric.heal();
    c.hive_mut(HiveId(3)).emit(Inc { key: "k".into() });
    c.advance(5_000, 50);
    let v = count_of(&c, "k").unwrap();
    assert!(v >= 2, "post-heal traffic must flow (got {v})");
}

#[test]
fn new_keys_route_even_with_heavy_drops() {
    let mut c = SimCluster::new(
        ClusterConfig {
            hives: 3,
            voters: 3,
            pending_retry_ms: 300,
            ..Default::default()
        },
        |h| h.install(counter()),
    );
    c.elect_registry(120_000).unwrap();
    // 20% of frames dropped: Raft retries, proposal retries and orphan
    // retries must still converge.
    c.fabric.set_faults(FabricFaults {
        drop_rate: 0.2,
        ..Default::default()
    });
    for i in 0..5 {
        c.hive_mut(HiveId((i % 3 + 1) as u32)).emit(Inc {
            key: format!("key{i}"),
        });
    }
    c.advance(30_000, 50);
    c.fabric.set_faults(FabricFaults::default());
    c.advance(10_000, 50);
    for i in 0..5 {
        assert_eq!(
            count_of(&c, &format!("key{i}")),
            Some(1),
            "key{i} must eventually route despite drops"
        );
    }
}

#[test]
fn registry_leader_partition_recovers() {
    let mut c = SimCluster::new(
        ClusterConfig {
            hives: 3,
            voters: 3,
            pending_retry_ms: 500,
            ..Default::default()
        },
        |h| h.install(counter()),
    );
    let leader = c.elect_registry(120_000).unwrap();
    // Cut the leader off from both followers: a new leader must emerge and
    // new keys must still become routable.
    for id in c.ids() {
        if id != leader {
            c.fabric.partition(leader, id);
        }
    }
    c.advance(10_000, 50);
    let new_leader = c
        .ids()
        .into_iter()
        .filter(|&id| id != leader)
        .find(|&id| c.hive(id).is_registry_leader());
    assert!(
        new_leader.is_some(),
        "a new registry leader must be elected"
    );

    let src = new_leader.unwrap();
    c.hive_mut(src).emit(Inc {
        key: "fresh".into(),
    });
    c.advance(10_000, 50);
    assert_eq!(
        count_of(&c, "fresh"),
        Some(1),
        "routing works under the new leader"
    );

    // Heal; the old leader rejoins as follower and sees the state.
    c.fabric.heal();
    c.advance(10_000, 50);
    let mirror = c.hive(leader).registry_view();
    assert!(
        mirror.owner("counter", &Cell::new("c", "fresh")).is_some(),
        "healed ex-leader catches up on the registry log"
    );
}

#[test]
fn latency_does_not_break_ordering() {
    let mut c = SimCluster::new(
        ClusterConfig {
            hives: 2,
            voters: 2,
            ..Default::default()
        },
        |h| h.install(counter()),
    );
    c.elect_registry(120_000).unwrap();
    c.fabric.set_faults(FabricFaults {
        latency_ms: 120,
        ..Default::default()
    });
    for _ in 0..10 {
        c.hive_mut(HiveId(2)).emit(Inc { key: "slow".into() });
        c.advance(500, 50);
    }
    c.advance(10_000, 50);
    assert_eq!(
        count_of(&c, "slow"),
        Some(10),
        "every delayed message applied exactly once"
    );
}

/// One app panics on every delivery while a second app keeps processing on
/// the same hive: the hive never dies, the healthy app is unaffected, every
/// poison message lands in the DLQ after exactly `max_redeliveries + 1`
/// attempts, and the exposed metrics report matching counts. Quarantine is
/// disabled so each message exhausts its full redelivery budget.
fn contained_panic_scenario(workers: usize) {
    let reports: Arc<Mutex<Vec<HiveMetrics>>> = Arc::new(Mutex::new(Vec::new()));
    let captured = reports.clone();
    let mut c = SimCluster::new(
        ClusterConfig {
            hives: 1,
            voters: 0,
            workers,
            quarantine_threshold: 0,
            ..Default::default()
        },
        move |h| {
            h.install(counter());
            h.install(poison_app());
            let instr = h.instrumentation();
            h.install(collector_app(instr));
            let sink = captured.clone();
            h.install(
                App::builder("capture")
                    .handle::<HiveMetrics>(
                        |_m| Mapped::LocalSingleton,
                        move |m, _c| {
                            sink.lock().push(m.clone());
                            Ok(())
                        },
                    )
                    .build(),
            );
        },
    );
    for i in 0..3 {
        c.hive_mut(HiveId(1)).emit(Poison {
            key: format!("p{i}"),
        });
    }
    for _ in 0..20 {
        c.hive_mut(HiveId(1)).emit(Inc {
            key: "healthy".into(),
        });
    }
    c.advance(10_000, 50);

    let hive = c.hive(HiveId(1));
    let (bee, _) = hive.local_bees("counter")[0];
    let count: u64 = hive
        .peek_state("counter", bee, "c", "healthy")
        .expect("healthy app state");
    assert_eq!(count, 20, "healthy app unaffected by the poison app");

    let letters = hive.dead_letters().snapshot();
    assert_eq!(letters.len(), 3, "one letter per poison message");
    for l in &letters {
        assert_eq!(l.app, "poison");
        assert_eq!(l.kind, FailureKind::Panic);
        assert_eq!(l.attempts, 4, "max_redeliveries(3) + 1 attempts");
        assert_eq!(l.detail, "poison pill");
    }
    let counters = hive.counters();
    assert_eq!(counters.handler_panics, 12, "3 messages x 4 attempts");
    assert_eq!(counters.redeliveries, 9, "3 messages x 3 redeliveries");
    assert_eq!(counters.dead_letters, 3);

    // The same numbers must flow through collector reports into the
    // Prometheus exposition.
    let mut analytics = Analytics::new();
    for w in reports.lock().iter() {
        analytics.ingest(w);
    }
    let text = analytics.render_prometheus();
    assert!(
        text.contains("beehive_handler_failures_total{kind=\"panic\"} 12"),
        "{text}"
    );
    assert!(text.contains("beehive_redeliveries_total 9"), "{text}");
    assert!(text.contains("beehive_dead_letters_total 3"), "{text}");
    assert!(text.contains("beehive_quarantined_bees 0"), "{text}");
}

#[test]
fn panicking_handler_is_contained_sequentially() {
    contained_panic_scenario(1);
}

#[test]
fn panicking_handler_is_contained_with_parallel_workers() {
    contained_panic_scenario(4);
}

/// A handler that fails deterministically (injected) and then succeeds:
/// redelivery masks the failures entirely — state converges, nothing
/// dead-letters.
fn transient_failure_scenario(workers: usize) {
    let mut c = SimCluster::new(
        ClusterConfig {
            hives: 1,
            voters: 0,
            workers,
            ..Default::default()
        },
        |h| h.install(counter()),
    );
    c.set_faults(FabricFaults::default().fail_handler("counter", "Inc", 2));
    c.hive_mut(HiveId(1)).emit(Inc { key: "k".into() });
    c.advance(5_000, 50);

    let hive = c.hive(HiveId(1));
    let (bee, _) = hive.local_bees("counter")[0];
    let count: u64 = hive.peek_state("counter", bee, "c", "k").expect("state");
    assert_eq!(count, 1, "the message applied exactly once after retries");
    assert_eq!(hive.counters().redeliveries, 2, "one per injected failure");
    assert_eq!(hive.counters().dead_letters, 0);
    assert!(hive.dead_letters().is_empty());
    assert_eq!(hive.handler_faults().armed(), 0, "faults consumed");
}

#[test]
fn transient_handler_failures_converge_sequentially() {
    transient_failure_scenario(1);
}

#[test]
fn transient_handler_failures_converge_with_parallel_workers() {
    transient_failure_scenario(4);
}

#[test]
fn quarantine_opens_and_recovers_via_half_open_probe() {
    let mut c = SimCluster::new(
        ClusterConfig {
            hives: 1,
            voters: 0,
            max_redeliveries: 0, // every failure dead-letters immediately
            quarantine_threshold: 3,
            quarantine_cooldown_ms: 5_000,
            ..Default::default()
        },
        |h| h.install(counter()),
    );
    // Create the bee with one clean delivery.
    c.hive_mut(HiveId(1)).emit(Inc { key: "k".into() });
    c.advance(1_000, 50);

    // Trip the breaker: three consecutive failures on the same bee.
    c.set_faults(FabricFaults::default().fail_handler("counter", "Inc", 3));
    for _ in 0..3 {
        c.hive_mut(HiveId(1)).emit(Inc { key: "k".into() });
    }
    c.advance(500, 50);
    assert_eq!(c.hive(HiveId(1)).counters().quarantines, 1, "breaker open");
    assert_eq!(c.hive(HiveId(1)).counters().dead_letters, 3);

    // While quarantined, new messages dead-letter fast without running.
    c.hive_mut(HiveId(1)).emit(Inc { key: "k".into() });
    c.advance(500, 50);
    let letters = c.hive(HiveId(1)).dead_letters().snapshot();
    assert!(
        letters
            .iter()
            .any(|l| l.kind == FailureKind::Quarantined && l.handler.is_empty()),
        "quarantined messages are rejected at admission: {letters:?}"
    );
    let (bee, _) = c.hive(HiveId(1)).local_bees("counter")[0];
    let count: u64 = c
        .hive(HiveId(1))
        .peek_state("counter", bee, "c", "k")
        .unwrap();
    assert_eq!(count, 1, "no deliveries while quarantined");

    // After the cooldown the half-open probe admits one message; its
    // success closes the breaker and normal processing resumes.
    c.advance(10_000, 50);
    c.hive_mut(HiveId(1)).emit(Inc { key: "k".into() });
    c.hive_mut(HiveId(1)).emit(Inc { key: "k".into() });
    c.advance(2_000, 50);
    let count: u64 = c
        .hive(HiveId(1))
        .peek_state("counter", bee, "c", "k")
        .unwrap();
    assert_eq!(count, 3, "breaker closed after the successful probe");
    assert_eq!(c.hive(HiveId(1)).counters().quarantines, 1, "opened once");
}

/// Regression: `requeue_dead_letters` must reset each envelope's delivery
/// count. A requeued message carries `deliveries = max_redeliveries + 1`
/// from its first life; without the reset it would bounce straight back to
/// the DLQ instead of getting the fresh budget the API promises.
#[test]
fn requeued_dead_letters_get_a_fresh_redelivery_budget() {
    let mut c = SimCluster::new(
        ClusterConfig {
            hives: 1,
            voters: 0,
            quarantine_threshold: 0,
            ..Default::default()
        },
        |h| h.install(counter()),
    );
    // Fail all 4 attempts (first + 3 redeliveries) so the message
    // dead-letters.
    c.set_faults(FabricFaults::default().fail_handler("counter", "Inc", 4));
    c.hive_mut(HiveId(1)).emit(Inc { key: "k".into() });
    c.advance(10_000, 50);
    assert_eq!(c.hive(HiveId(1)).dead_letters().snapshot().len(), 1);
    assert_eq!(c.hive(HiveId(1)).counters().dead_letters, 1);

    // The fault is gone; requeue must replay the message successfully.
    assert_eq!(c.hive_mut(HiveId(1)).requeue_dead_letters(), 1);
    c.advance(10_000, 50);
    let (bee, _) = c.hive(HiveId(1)).local_bees("counter")[0];
    let count: u64 = c
        .hive(HiveId(1))
        .peek_state("counter", bee, "c", "k")
        .expect("state after requeue");
    assert_eq!(count, 1, "requeued message applied");
    assert!(
        c.hive(HiveId(1)).dead_letters().is_empty(),
        "no second dead-lettering: the budget was reset"
    );
    assert_eq!(
        c.hive(HiveId(1)).counters().dead_letters,
        1,
        "counter unchanged by the successful requeue"
    );
}
