//! The introspection plane end to end: two hives over real TCP, a
//! cross-hive message chain, and a [`beehive::core::StatusServer`] on hive 1
//! answering `GET /trace/<id>` by assembling spans from *both* hives into
//! one merged chrome-trace document — plus a proof that `--metrics-dump`
//! and `GET /metrics` share one render path.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use beehive::core::{
    render_metrics, Analytics, DeadLetterStore, EventJournal, Hive, HiveConfig, HiveHandle,
    StatusContext, StatusServer, TraceCollector, TraceHub, Transport,
};
use beehive::net::TcpTransport;
use beehive::prelude::*;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Hop {
    stage: u8,
    key: String,
}
beehive::core::impl_message!(Hop);

/// Stage 0 → 1 → 2, each stage its own cell so the chain can span hives.
fn chain_app() -> App {
    App::builder("chain")
        .handle::<Hop>(
            |m| {
                let dict = match m.stage {
                    0 => "s0",
                    1 => "s1",
                    _ => "s2",
                };
                Mapped::cell(dict, &m.key)
            },
            |m, ctx| {
                if m.stage < 2 {
                    ctx.emit(Hop {
                        stage: m.stage + 1,
                        key: m.key.clone(),
                    });
                }
                Ok(())
            },
        )
        .build()
}

/// Plain HTTP/1.0 GET against the status server; returns the body.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to status server");
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (_, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body separator");
    body.to_string()
}

#[test]
fn status_server_assembles_a_cross_hive_trace_over_tcp() {
    // Two hives over TCP on localhost, port 0 then address exchange.
    let mut transports: Vec<TcpTransport> = (1..=2u32)
        .map(|i| {
            TcpTransport::bind(HiveId(i), "127.0.0.1:0".parse().unwrap(), HashMap::new()).unwrap()
        })
        .collect();
    let addrs: Vec<_> = transports.iter().map(|t| t.local_addr()).collect();
    for (i, t) in transports.iter_mut().enumerate() {
        for (j, &addr) in addrs.iter().enumerate() {
            if i != j {
                t.add_peer(HiveId(j as u32 + 1), addr);
            }
        }
    }

    let all = vec![HiveId(1), HiveId(2)];
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles: Vec<HiveHandle> = Vec::new();
    let mut tracers: Vec<Arc<TraceCollector>> = Vec::new();
    let mut status_ctx: Option<StatusContext> = None;
    let mut threads = Vec::new();

    for transport in transports {
        let id = transport.local();
        let counters = transport.counters();
        let mut cfg = HiveConfig::clustered(id, all.clone(), 2);
        cfg.tick_interval_ms = 0;
        cfg.raft_tick_ms = 5;
        cfg.pending_retry_ms = 200;
        let mut hive = Hive::new(cfg, Arc::new(SystemClock::new()), Box::new(transport));
        hive.install(chain_app());
        handles.push(hive.handle());
        tracers.push(hive.tracer());
        if id == HiveId(1) {
            let handle = hive.handle();
            status_ctx = Some(StatusContext {
                analytics: Arc::new(std::sync::Mutex::new(Analytics::new())),
                transport: Some(counters),
                dead_letters: hive.dead_letters(),
                events: hive.events(),
                tracer: hive.tracer(),
                trace_hub: hive.trace_hub(),
                nudge: Some(Arc::new(move || handle.nudge())),
                lifecycle: Some(hive.lifecycle()),
            });
        }
        let stop2 = stop.clone();
        threads.push(std::thread::spawn(move || {
            hive.run(&stop2);
            hive
        }));
    }
    let server = StatusServer::bind("127.0.0.1:0".parse().unwrap(), status_ctx.unwrap())
        .expect("bind status server");

    std::thread::sleep(std::time::Duration::from_millis(500));

    // Warm-up: claim stages 1 and 2 on hive 2, so hive 1's traced run below
    // has to cross the wire to finish the chain.
    handles[1].emit(Hop {
        stage: 1,
        key: "k".into(),
    });
    std::thread::sleep(std::time::Duration::from_millis(500));

    // The traced run starts at stage 0 on hive 1.
    handles[0].emit(Hop {
        stage: 0,
        key: "k".into(),
    });

    // Wait until the root ran on hive 1 and both remote stages ran on hive 2.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    let root = loop {
        let h1 = tracers[0].snapshot();
        if let Some(root) = h1
            .iter()
            .find(|s| s.app == "chain" && s.parent_span == 0)
            .cloned()
        {
            let remote = tracers[1]
                .snapshot()
                .iter()
                .filter(|s| s.trace_id == root.trace_id)
                .count();
            if remote >= 2 {
                break root;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "chain never completed across both hives"
        );
        std::thread::sleep(std::time::Duration::from_millis(100));
    };

    // GET /trace/<id> triggers the cluster-wide assembly: hive 1 broadcasts
    // a TraceQuery, hive 2 replies, and the server merges the spans.
    let body = http_get(server.local_addr(), &format!("/trace/{}", root.trace_id));
    assert!(body.contains("\"traceEvents\""), "body: {body}");
    assert!(
        body.contains("\"pid\":1") && body.contains("\"pid\":2"),
        "merged trace must carry spans from both hives: {body}"
    );
    assert!(
        body.contains("\"name\":\"hive-1\"") && body.contains("\"name\":\"hive-2\""),
        "one process lane per hive: {body}"
    );
    assert!(
        body.matches("\"ph\":\"X\"").count() >= 3,
        "all three chain stages in the merge: {body}"
    );
    assert!(
        body.contains(&format!("\"parent\":{}", root.span_id)),
        "remote spans link back to the root via parent_span: {body}"
    );

    // The flight recorder on hive 1 saw real lifecycle traffic and none of
    // it rendered malformed.
    let events = http_get(server.local_addr(), "/events?n=500");
    assert!(events.contains("\"kind\":\"peer_connect\""), "{events}");
    assert!(events.contains("\"kind\":\"bee_spawned\""), "{events}");

    stop.store(true, Ordering::Relaxed);
    for h in &handles {
        h.nudge();
    }
    let hives: Vec<Hive> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    for hive in &hives {
        assert_eq!(hive.events().malformed(), 0);
    }
    drop(server);
}

#[test]
fn metrics_dump_and_status_endpoint_share_one_render_path() {
    // A standalone context: what --metrics-dump writes and what
    // GET /metrics serves must be the same bytes, modulo the uptime gauge
    // (which legitimately advances between the two renders).
    let analytics = Arc::new(std::sync::Mutex::new(Analytics::new()));
    let clock: Arc<SystemClock> = Arc::new(SystemClock::new());
    let ctx = StatusContext {
        analytics: analytics.clone(),
        transport: None,
        dead_letters: Arc::new(DeadLetterStore::new(16)),
        events: Arc::new(EventJournal::new(HiveId(1), 16, clock)),
        tracer: Arc::new(TraceCollector::new(16)),
        trace_hub: Arc::new(TraceHub::new()),
        nudge: None,
        lifecycle: None,
    };
    let server = StatusServer::bind("127.0.0.1:0".parse().unwrap(), ctx).expect("bind");

    let dumped = render_metrics(&analytics.lock().unwrap(), None);
    let served = http_get(server.local_addr(), "/metrics");

    let strip = |text: &str| -> String {
        text.lines()
            .filter(|l| !l.starts_with("beehive_uptime_seconds "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip(&dumped),
        strip(&served),
        "one render path behind both transports"
    );
    assert!(served.contains("beehive_build_info{"), "{served}");
}
