//! Elastic membership end to end over real TCP — the production code path,
//! no simulator: a three-voter cluster absorbs a fourth hive live (learner →
//! voter, with every peer adding it at runtime), then a seed voter drains
//! out under load. The drained hive must exit with zero owned cells and a
//! fully-acked outbox, `/healthz` must report `draining` while it leaves,
//! and the survivors must account for every increment — nothing lost to the
//! scale-in — with exactly one owner per cell afterwards.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use beehive::core::{
    Analytics, Hive, HiveConfig, HiveHandle, LifecycleStage, StatusContext, StatusServer, Transport,
};
use beehive::net::TcpTransport;
use beehive::prelude::*;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Count {
    key: String,
}
beehive::core::impl_message!(Count);

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ReadBack {
    key: String,
}
beehive::core::impl_message!(ReadBack);

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Answer {
    key: String,
    value: u64,
}
beehive::core::impl_message!(Answer);

fn counter(answers: Arc<Mutex<HashMap<String, u64>>>) -> App {
    App::builder("counter")
        .handle::<Count>(
            |m| Mapped::cell("c", &m.key),
            |m, ctx| {
                let n: u64 = ctx
                    .get("c", &m.key)
                    .map_err(|e| e.to_string())?
                    .unwrap_or(0);
                ctx.put("c", m.key.clone(), &(n + 1))
                    .map_err(|e| e.to_string())?;
                Ok(())
            },
        )
        .handle::<ReadBack>(
            |m| Mapped::cell("c", &m.key),
            |m, ctx| {
                let n: u64 = ctx
                    .get("c", &m.key)
                    .map_err(|e| e.to_string())?
                    .unwrap_or(0);
                ctx.emit(Answer {
                    key: m.key.clone(),
                    value: n,
                });
                Ok(())
            },
        )
        .handle::<Answer>(|_m| Mapped::LocalSingleton, {
            move |m, _ctx| {
                answers.lock().insert(m.key.clone(), m.value);
                Ok(())
            }
        })
        .build()
}

/// Plain HTTP/1.0 GET against the status server; returns the body.
fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to status server");
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (_, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body separator");
    body.to_string()
}

fn key(i: usize) -> String {
    format!("k{i}")
}

const KEYS: usize = 8;

#[test]
fn hive_joins_live_then_a_voter_drains_out_over_tcp() {
    // --- seed cluster: three voters over TCP, port 0 + address exchange ---
    let mut transports: Vec<TcpTransport> = (1..=3u32)
        .map(|i| {
            TcpTransport::bind(HiveId(i), "127.0.0.1:0".parse().unwrap(), HashMap::new()).unwrap()
        })
        .collect();
    let addrs: Vec<SocketAddr> = transports.iter().map(|t| t.local_addr()).collect();
    for (i, t) in transports.iter_mut().enumerate() {
        for (j, &addr) in addrs.iter().enumerate() {
            if i != j {
                t.add_peer(HiveId(j as u32 + 1), addr);
            }
        }
    }

    let all: Vec<HiveId> = (1..=3).map(HiveId).collect();
    let answers: Arc<Mutex<HashMap<String, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles: Vec<HiveHandle> = Vec::new();
    let mut drains: Vec<Arc<AtomicBool>> = Vec::new();
    let mut lifecycles = Vec::new();
    let mut threads = Vec::new();
    let mut status_server = None;

    for transport in transports {
        let id = transport.local();
        let counters = transport.counters();
        let mut cfg = HiveConfig::clustered(id, all.clone(), 3);
        cfg.tick_interval_ms = 0;
        cfg.raft_tick_ms = 5;
        cfg.pending_retry_ms = 200;
        let mut hive = Hive::new(cfg, Arc::new(SystemClock::new()), Box::new(transport));
        hive.install(counter(answers.clone()));
        handles.push(hive.handle());
        lifecycles.push(hive.lifecycle());
        if id == HiveId(1) {
            // The hive we will drain serves /healthz, so the test can watch
            // it report `draining` (with a 200) on its way out.
            let handle = hive.handle();
            let ctx = StatusContext {
                analytics: Arc::new(std::sync::Mutex::new(Analytics::new())),
                transport: Some(counters),
                dead_letters: hive.dead_letters(),
                events: hive.events(),
                tracer: hive.tracer(),
                trace_hub: hive.trace_hub(),
                nudge: Some(Arc::new(move || handle.nudge())),
                lifecycle: Some(hive.lifecycle()),
            };
            status_server =
                Some(StatusServer::bind("127.0.0.1:0".parse().unwrap(), ctx).expect("bind status"));
        }
        let drain = Arc::new(AtomicBool::new(false));
        drains.push(drain.clone());
        let stop2 = stop.clone();
        threads.push(std::thread::spawn(move || {
            hive.run_elastic(&stop2, &drain);
            hive
        }));
    }
    let server = status_server.expect("hive 1 serves status");

    // Let the registry group elect, then spread some load: every seed hive
    // increments every key once (3 per key).
    std::thread::sleep(std::time::Duration::from_millis(500));
    for i in 0..KEYS {
        for h in &handles {
            h.emit(Count { key: key(i) });
        }
    }

    // --- live join: hive 4 boots as a learner against the running cluster.
    // Only the joiner knows the seed addresses; the seeds learn hive 4's
    // address at runtime from its join announcement.
    let peers: HashMap<HiveId, SocketAddr> = addrs
        .iter()
        .enumerate()
        .map(|(j, &a)| (HiveId(j as u32 + 1), a))
        .collect();
    let t4 = TcpTransport::bind(HiveId(4), "127.0.0.1:0".parse().unwrap(), peers).unwrap();
    let addr4 = t4.local_addr();
    let joined: Vec<HiveId> = (1..=4).map(HiveId).collect();
    let mut cfg4 = HiveConfig::clustered(HiveId(4), joined, 3);
    cfg4.tick_interval_ms = 0;
    cfg4.raft_tick_ms = 5;
    cfg4.pending_retry_ms = 200;
    let mut hive4 = Hive::new(cfg4, Arc::new(SystemClock::new()), Box::new(t4));
    hive4.install(counter(answers.clone()));
    handles.push(hive4.handle());
    lifecycles.push(hive4.lifecycle());
    hive4.begin_join(&addr4.to_string());
    let drain4 = Arc::new(AtomicBool::new(false));
    drains.push(drain4.clone());
    let stop2 = stop.clone();
    threads.push(std::thread::spawn(move || {
        hive4.run_elastic(&stop2, &drain4);
        hive4
    }));

    // The staircase: learner added, log caught up, promoted to voter.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while lifecycles[3].stage() != LifecycleStage::Active {
        assert!(
            std::time::Instant::now() < deadline,
            "hive 4 never finished joining (stage {:?})",
            lifecycles[3].stage()
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }

    // Load through the new member too (4 per key now).
    for i in 0..KEYS {
        handles[3].emit(Count { key: key(i) });
    }

    // --- drain hive 1, a seed voter, mid-workload ---
    drains[0].store(true, Ordering::Relaxed);
    handles[0].nudge();
    // Survivors keep writing while the evacuation runs (7 per key total).
    for i in 0..KEYS {
        for h in &handles[1..] {
            h.emit(Count { key: key(i) });
        }
    }

    // /healthz must report the deliberate transition — still a 200, so
    // orchestration can watch the drain rather than kill the pod.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let mut saw_draining = false;
    while std::time::Instant::now() < deadline {
        let body = http_get(server.local_addr(), "/healthz");
        if body.contains("\"lifecycle\":\"draining\"") {
            saw_draining = true;
            break;
        }
        if lifecycles[0].stage() == LifecycleStage::Departed {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(saw_draining, "/healthz never reported the drain");

    // The drained hive exits on its own: zero owned cells, outbox acked,
    // configuration entry removed.
    let hive1: Hive = threads.remove(0).join().expect("hive 1 thread");
    assert_eq!(hive1.lifecycle().stage(), LifecycleStage::Departed);
    assert!(
        hive1
            .local_bees("counter")
            .iter()
            .all(|&(_, cells)| cells == 0),
        "a drained hive owns no cells: {:?}",
        hive1.local_bees("counter")
    );
    assert_eq!(
        hive1.channel_stats().outbox_depth,
        0,
        "a drained hive leaves no unacked envelopes behind"
    );

    // Every increment must be accounted for on the survivors: read each key
    // back until it reports all 7 writes (3 seed + 1 post-join + 3 in-drain).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        for i in 0..KEYS {
            handles[2].emit(ReadBack { key: key(i) });
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
        let snap = answers.lock().clone();
        if (0..KEYS).all(|i| snap.get(&key(i)) == Some(&7)) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "increments lost to the drain: {snap:?}"
        );
    }

    stop.store(true, Ordering::Relaxed);
    for h in &handles[1..] {
        h.nudge();
    }
    let survivors: Vec<Hive> = threads.into_iter().map(|t| t.join().unwrap()).collect();

    // Ownership exclusivity after churn: every key-cell owned exactly once
    // across the survivors, and nothing rendered malformed anywhere.
    let owners: usize = survivors
        .iter()
        .flat_map(|h| h.local_bees("counter"))
        .filter(|&(_, cells)| cells > 0)
        .count();
    assert_eq!(owners, KEYS, "one owner per key across the survivors");
    for hive in survivors.iter().chain(std::iter::once(&hive1)) {
        assert_eq!(hive.events().malformed(), 0);
    }
    drop(server);
}
