//! Live-migration integration tests: state travels intact, in-flight
//! messages are buffered and forwarded, identities are stable, and the bee
//! keeps serving afterwards — including migrating back.

use beehive::prelude::*;
use beehive::sim::{ClusterConfig, SimCluster};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Add {
    key: String,
    value: u64,
}
beehive::core::impl_message!(Add);

fn adder() -> App {
    App::builder("adder")
        .handle::<Add>(
            |m| Mapped::cell("sums", &m.key),
            |m, ctx| {
                let n: u64 = ctx
                    .get("sums", &m.key)
                    .map_err(|e| e.to_string())?
                    .unwrap_or(0);
                ctx.put("sums", m.key.clone(), &(n + m.value))
                    .map_err(|e| e.to_string())?;
                Ok(())
            },
        )
        .build()
}

fn cluster(n: usize) -> SimCluster {
    let mut c = SimCluster::new(
        ClusterConfig {
            hives: n,
            voters: n.min(3),
            ..Default::default()
        },
        |h| h.install(adder()),
    );
    c.elect_registry(120_000).expect("leader");
    c
}

fn bee_location(c: &SimCluster, key: &str) -> (BeeId, HiveId) {
    let cell = beehive::core::Cell::new("sums", key);
    for id in c.ids() {
        let mirror = c.hive(id).registry_view();
        if let Some(bee) = mirror.owner("adder", &cell) {
            return (bee, mirror.hive_of(bee).unwrap());
        }
    }
    panic!("no bee for key {key}");
}

fn sum_of(c: &SimCluster, key: &str) -> u64 {
    let (bee, hive) = bee_location(c, key);
    c.hive(hive)
        .peek_state::<u64>("adder", bee, "sums", key)
        .unwrap_or(0)
}

#[test]
fn migration_preserves_state_and_identity() {
    let mut c = cluster(3);
    c.hive_mut(HiveId(1)).emit(Add {
        key: "k".into(),
        value: 10,
    });
    c.advance(3_000, 50);
    let (bee, from) = bee_location(&c, "k");
    assert_eq!(from, HiveId(1));
    assert_eq!(sum_of(&c, "k"), 10);

    // Order the migration to hive 3.
    c.hive_mut(HiveId(1))
        .request_migration("adder", bee, from, HiveId(3));
    c.advance(3_000, 50);

    let (bee_after, now) = bee_location(&c, "k");
    assert_eq!(now, HiveId(3), "bee should be on hive 3");
    assert_eq!(bee_after, bee, "identity is stable across migration");
    assert_eq!(sum_of(&c, "k"), 10, "state travelled with the bee");
    assert!(c.hive(HiveId(3)).counters().migrations_in >= 1);

    // It still processes messages, routed from any hive.
    c.hive_mut(HiveId(2)).emit(Add {
        key: "k".into(),
        value: 5,
    });
    c.advance(3_000, 50);
    assert_eq!(sum_of(&c, "k"), 15);
}

#[test]
fn messages_sent_during_migration_are_not_lost() {
    let mut c = cluster(3);
    for i in 0..5 {
        c.hive_mut(HiveId(1)).emit(Add {
            key: "k".into(),
            value: i,
        });
    }
    c.advance(3_000, 50);
    let (bee, from) = bee_location(&c, "k");

    // Kick off the migration and immediately blast messages from every hive
    // WITHOUT letting the cluster settle first.
    c.hive_mut(HiveId(1))
        .request_migration("adder", bee, from, HiveId(2));
    for i in 0..10u64 {
        let src = HiveId((i % 3 + 1) as u32);
        c.hive_mut(src).emit(Add {
            key: "k".into(),
            value: 100,
        });
    }
    c.advance(6_000, 50);

    let expect = (0..5).sum::<u64>() + 10 * 100;
    assert_eq!(
        sum_of(&c, "k"),
        expect,
        "every message must be applied exactly once"
    );
    assert_eq!(bee_location(&c, "k").1, HiveId(2));
}

#[test]
fn migrate_back_and_forth() {
    let mut c = cluster(3);
    c.hive_mut(HiveId(1)).emit(Add {
        key: "pp".into(),
        value: 1,
    });
    c.advance(3_000, 50);
    let (bee, h1) = bee_location(&c, "pp");

    c.hive_mut(h1)
        .request_migration("adder", bee, h1, HiveId(2));
    c.advance(3_000, 50);
    assert_eq!(bee_location(&c, "pp").1, HiveId(2));

    c.hive_mut(HiveId(2))
        .request_migration("adder", bee, HiveId(2), h1);
    c.advance(3_000, 50);
    assert_eq!(bee_location(&c, "pp").1, h1, "bee returned home");

    c.hive_mut(HiveId(3)).emit(Add {
        key: "pp".into(),
        value: 9,
    });
    c.advance(3_000, 50);
    assert_eq!(sum_of(&c, "pp"), 10);
}

#[test]
fn migration_to_current_hive_is_a_noop() {
    let mut c = cluster(2);
    c.hive_mut(HiveId(1)).emit(Add {
        key: "x".into(),
        value: 3,
    });
    c.advance(3_000, 50);
    let (bee, hive) = bee_location(&c, "x");
    c.hive_mut(hive).request_migration("adder", bee, hive, hive);
    c.advance(2_000, 50);
    assert_eq!(bee_location(&c, "x"), (bee, hive));
    assert_eq!(sum_of(&c, "x"), 3);
}

/// Crash the source hive mid-migration: the state snapshot has been shipped
/// and staged at the destination, but the source dies before its
/// `MoveBee` proposal reaches the registry leader. The destination's
/// `recover_from` must adopt the staged bee — the registry converges to
/// exactly one owner and the cell (with its state) is not lost.
#[test]
fn source_crash_between_migrate_state_and_commit_loses_nothing() {
    use beehive::sim::{check_ownership, gather, CrashLedger};

    let mut c = cluster(3);
    let leader = c
        .ids()
        .into_iter()
        .find(|&id| c.hive(id).is_registry_leader())
        .expect("a registry leader");
    // Three distinct roles: the bee's source (not the leader), the
    // migration destination (the remaining hive), and the leader.
    let src = c.ids().into_iter().find(|&id| id != leader).unwrap();
    let dest = c
        .ids()
        .into_iter()
        .find(|&id| id != leader && id != src)
        .unwrap();

    // Create the bee on `src` (cells are assigned to the emitting hive).
    c.hive_mut(src).emit(Add {
        key: "mm".into(),
        value: 42,
    });
    c.advance(3_000, 50);
    let (bee, owner) = bee_location(&c, "mm");
    assert_eq!(owner, src);

    // Cut src off from the leader only: the direct src→dest MigrateState
    // ships, but src's MoveBee proposal can never commit.
    c.fabric.partition(src, leader);
    c.hive_mut(src).request_migration("adder", bee, src, dest);
    c.advance(1_000, 50);
    assert_eq!(
        c.hive(dest).registry_view().hive_of(bee),
        Some(src),
        "MoveBee must not have committed while src is cut from the leader"
    );

    // The source dies with the move un-committed; heal the survivors.
    let _ = c.crash(src);
    c.fabric.heal();
    c.advance(1_000, 50);

    // The destination holds the staged snapshot and proposes the adoption.
    let adopted = c.hive_mut(dest).recover_from(src);
    assert_eq!(adopted, 1, "the staged mid-migration bee is recoverable");
    c.advance(5_000, 50);

    // Exactly one owner, on the destination, with the shipped state intact.
    let audit = gather(&c, "adder", "Add", 0, 0, &CrashLedger::default());
    assert!(
        check_ownership(&audit).is_empty(),
        "ownership must be exclusive after recovery: {:?}",
        check_ownership(&audit)
    );
    for id in [leader, dest] {
        assert_eq!(
            c.hive(id).registry_view().hive_of(bee),
            Some(dest),
            "survivors agree the bee moved to the destination"
        );
    }
    let sum: u64 = c
        .hive(dest)
        .peek_state("adder", bee, "sums", "mm")
        .expect("state adopted from the staged snapshot");
    assert_eq!(sum, 42, "no state lost in the crash");

    // And the bee keeps serving.
    c.hive_mut(leader).emit(Add {
        key: "mm".into(),
        value: 8,
    });
    c.advance(3_000, 50);
    assert_eq!(
        c.hive(dest)
            .peek_state::<u64>("adder", bee, "sums", "mm")
            .unwrap(),
        50
    );
}

#[test]
fn concurrent_migrations_of_different_bees() {
    let mut c = cluster(3);
    for k in ["a", "b", "c", "d"] {
        c.hive_mut(HiveId(1)).emit(Add {
            key: k.into(),
            value: 7,
        });
    }
    c.advance(3_000, 50);
    let moves: Vec<(BeeId, HiveId, HiveId)> = ["a", "b", "c", "d"]
        .iter()
        .enumerate()
        .map(|(i, k)| {
            let (bee, from) = bee_location(&c, k);
            (bee, from, HiveId((i % 2 + 2) as u32))
        })
        .collect();
    for &(bee, from, to) in &moves {
        c.hive_mut(from).request_migration("adder", bee, from, to);
    }
    c.advance(6_000, 50);
    for (i, k) in ["a", "b", "c", "d"].iter().enumerate() {
        let (_, hive) = bee_location(&c, k);
        assert_eq!(hive, HiveId((i % 2 + 2) as u32), "bee for {k} moved");
        assert_eq!(sum_of(&c, k), 7);
    }
}
