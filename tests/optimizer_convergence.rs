//! The full platform-app loop: collector → aggregator/optimizer →
//! migration orders → live migration. Verifies the paper's §5 claim that
//! the runtime "migrates the bees … next to the OpenFlow driver" without
//! manual intervention.

use beehive::core::optimizer::OptimizerConfig;
use beehive::core::{collector_app, optimizer_app};
use beehive::prelude::*;
use beehive::sim::{ClusterConfig, SimCluster};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Work {
    key: String,
    n: u64,
}
beehive::core::impl_message!(Work);

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Drive {
    key: String,
}
beehive::core::impl_message!(Drive);

/// `producer` is pinned per-hive (local singleton) and fans `Work` out to
/// `consumer`, whose per-key bees are what the optimizer should move.
fn producer() -> App {
    App::builder("producer")
        .handle_local::<Drive>("drive", |m, ctx| {
            ctx.emit(Work {
                key: m.key.clone(),
                n: 1,
            });
            Ok(())
        })
        .build()
}

fn consumer() -> App {
    App::builder("consumer")
        .handle::<Work>(
            |m| Mapped::cell("acc", &m.key),
            |m, ctx| {
                let v: u64 = ctx
                    .get("acc", &m.key)
                    .map_err(|e| e.to_string())?
                    .unwrap_or(0);
                ctx.put("acc", m.key.clone(), &(v + m.n))
                    .map_err(|e| e.to_string())?;
                Ok(())
            },
        )
        .build()
}

#[test]
fn optimizer_moves_consumers_next_to_their_producers() {
    let mut cluster = SimCluster::new(
        ClusterConfig {
            hives: 3,
            voters: 3,
            tick_interval_ms: 1000,
            ..Default::default()
        },
        |hive| {
            hive.install(producer());
            hive.install(consumer());
            let instr = hive.instrumentation();
            hive.install(collector_app(instr));
            hive.install(optimizer_app(
                OptimizerConfig {
                    min_messages: 5,
                    ..Default::default()
                },
                3, // optimize every 3 ticks
            ));
        },
    );
    cluster.elect_registry(120_000).expect("leader");

    // Create the consumer bee for "hot" on hive 1 (first message origin).
    cluster.hive_mut(HiveId(1)).emit(Work {
        key: "hot".into(),
        n: 0,
    });
    cluster.advance(2_000, 50);
    let cell = beehive::core::Cell::new("acc", "hot");
    let bee = cluster
        .hive(HiveId(1))
        .registry_view()
        .owner("consumer", &cell)
        .unwrap();
    assert_eq!(
        cluster.hive(HiveId(1)).registry_view().hive_of(bee),
        Some(HiveId(1))
    );

    // Now hive 3's pinned producer hammers it: every tick, hive 3 emits
    // Drive, its local producer bee emits Work — so the consumer's inbound
    // traffic is bee-sourced from hive 3.
    for _ in 0..30 {
        cluster
            .hive_mut(HiveId(3))
            .emit(Drive { key: "hot".into() });
        cluster.advance(1_000, 100);
    }

    let now = cluster.hive(HiveId(1)).registry_view().hive_of(bee);
    assert_eq!(
        now,
        Some(HiveId(3)),
        "optimizer should migrate the consumer next to its producer"
    );
    // No messages were lost along the way.
    let total: u64 = cluster
        .ids()
        .iter()
        .filter_map(|&h| {
            cluster
                .hive(h)
                .peek_state::<u64>("consumer", bee, "acc", "hot")
        })
        .sum();
    assert_eq!(total, 30);
}

#[test]
fn optimizer_leaves_balanced_bees_alone() {
    let mut cluster = SimCluster::new(
        ClusterConfig {
            hives: 2,
            voters: 2,
            tick_interval_ms: 1000,
            ..Default::default()
        },
        |hive| {
            hive.install(producer());
            hive.install(consumer());
            let instr = hive.instrumentation();
            hive.install(collector_app(instr));
            hive.install(optimizer_app(
                OptimizerConfig {
                    min_messages: 5,
                    ..Default::default()
                },
                3,
            ));
        },
    );
    cluster.elect_registry(120_000).expect("leader");
    cluster.hive_mut(HiveId(1)).emit(Work {
        key: "even".into(),
        n: 0,
    });
    cluster.advance(2_000, 50);
    let cell = beehive::core::Cell::new("acc", "even");
    let bee = cluster
        .hive(HiveId(1))
        .registry_view()
        .owner("consumer", &cell)
        .unwrap();

    // Both hives' producers send equally: no strict majority anywhere.
    for _ in 0..20 {
        cluster
            .hive_mut(HiveId(1))
            .emit(Drive { key: "even".into() });
        cluster
            .hive_mut(HiveId(2))
            .emit(Drive { key: "even".into() });
        cluster.advance(1_000, 100);
    }
    assert_eq!(
        cluster.hive(HiveId(1)).registry_view().hive_of(bee),
        Some(HiveId(1)),
        "a 50/50 split is not a majority; the bee must stay"
    );
}
