//! Property tests for the supervised-redelivery backoff schedule
//! ([`beehive::core::backoff_delay_ms`]).
//!
//! The schedule must be: monotonically non-decreasing in the attempt
//! number, capped (strictly below `65 * base`), and a pure function of
//! `(base_ms, attempt, bee)` — the jitter comes from the bee id, never from
//! global state, so chaos runs replay identically.

use beehive::core::{backoff_delay_ms, BeeId};
use proptest::prelude::*;

proptest! {
    #[test]
    fn monotone_non_decreasing(base in 1u64..10_000, bee in any::<u64>()) {
        let bee = BeeId(bee);
        let mut prev = 0u64;
        for attempt in 1u32..=20 {
            let d = backoff_delay_ms(base, attempt, bee);
            prop_assert!(
                d >= prev,
                "attempt {attempt}: {d} < previous {prev} (base {base}, bee {bee:?})"
            );
            prev = d;
        }
    }

    #[test]
    fn capped_below_65x_base(
        base in 1u64..10_000,
        attempt in 1u32..1_000,
        bee in any::<u64>(),
    ) {
        let d = backoff_delay_ms(base, attempt, BeeId(bee));
        // Cap: exponent tops out at 64*base, jitter is < base.
        prop_assert!(d < 65 * base, "{d} >= 65 * {base}");
    }

    #[test]
    fn deterministic_per_bee_and_attempt(
        base in 0u64..10_000,
        attempt in 0u32..1_000,
        bee in any::<u64>(),
    ) {
        let a = backoff_delay_ms(base, attempt, BeeId(bee));
        let b = backoff_delay_ms(base, attempt, BeeId(bee));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn constant_past_the_clamp(base in 1u64..10_000, bee in any::<u64>()) {
        let bee = BeeId(bee);
        let capped = backoff_delay_ms(base, 7, bee);
        for attempt in 8u32..=64 {
            prop_assert_eq!(backoff_delay_ms(base, attempt, bee), capped);
        }
    }

    #[test]
    fn zero_base_behaves_as_one(attempt in 1u32..100, bee in any::<u64>()) {
        let bee = BeeId(bee);
        prop_assert_eq!(
            backoff_delay_ms(0, attempt, bee),
            backoff_delay_ms(1, attempt, bee)
        );
    }
}
