//! Reliable channel integration tests: effectively-once delivery across
//! hive crashes. A receiver that crashes after handling but before acking
//! must suppress the redelivered envelope on replay (dedup state restored
//! from the outbox journal) with no double-apply to dictionaries; a sender
//! that crashes with unacked messages must replay them from its journal;
//! and a one-way burst must coalesce into O(1) standalone ack frames.

use beehive::prelude::*;
use beehive::sim::cluster::{ClusterConfig, SimCluster};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Add {
    key: String,
    amount: u64,
}
beehive::core::impl_message!(Add);

fn adder_app() -> App {
    App::builder("adder")
        .handle::<Add>(
            |m| Mapped::cell("d", &m.key),
            |m, ctx| {
                let n: u64 = ctx
                    .get("d", &m.key)
                    .map_err(|e| e.to_string())?
                    .unwrap_or(0);
                ctx.put("d", m.key.clone(), &(n + m.amount))
                    .map_err(|e| e.to_string())?;
                Ok(())
            },
        )
        .build()
}

fn storage_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bh-reliable-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cluster(dir: &std::path::Path) -> SimCluster {
    SimCluster::new(
        ClusterConfig {
            hives: 3,
            voters: 3,
            tick_interval_ms: 0, // no platform ticks: Add is the only app traffic
            channel_resend_ms: 100,
            channel_ack_flush_ms: 5,
            registry_storage_dir: Some(dir.to_path_buf()),
            ..Default::default()
        },
        |h| h.install(adder_app()),
    )
}

/// Pins key `k` to a bee on hive 2 and returns its id, so later emits from
/// hive 1 are genuine cross-hive relays through the reliable channel.
fn seed_bee_on_hive2(c: &mut SimCluster) -> BeeId {
    c.hive_mut(HiveId(2)).emit(Add {
        key: "k".into(),
        amount: 1,
    });
    c.advance(3_000, 50);
    assert_eq!(c.hive(HiveId(2)).local_bee_count("adder"), 1);
    c.hive(HiveId(2)).local_bees("adder")[0].0
}

fn value_on_hive2(c: &SimCluster, bee: BeeId) -> u64 {
    c.hive(HiveId(2))
        .peek_state("adder", bee, "d", "k")
        .expect("key exists")
}

/// Receiver crash between handling and acking: hive 2 applies the message
/// and journals the delivery, then dies before its coalesced ack ever
/// flushes. The sender retransmits after the restart; the replayed dedup
/// state must suppress the redelivery — the dictionary is not doubled.
#[test]
fn receiver_crash_after_handling_does_not_double_apply() {
    let dir = storage_dir("recv-crash");
    let mut c = cluster(&dir);
    c.elect_registry(120_000).unwrap();
    let bee = seed_bee_on_hive2(&mut c);
    assert_eq!(value_on_hive2(&c, bee), 1);

    // Cross-hive message, stepped WITHOUT advancing the clock: delivery and
    // handling complete, but the receiver's ack (due in ack_flush_ms) never
    // flushes and the sender's resend timer never fires.
    c.hive_mut(HiveId(1)).emit(Add {
        key: "k".into(),
        amount: 10,
    });
    for _ in 0..100_000 {
        if c.step_all() == 0 {
            break;
        }
    }
    assert_eq!(value_on_hive2(&c, bee), 11, "handled before the crash");
    assert!(
        c.hive(HiveId(1)).channel_stats().outbox_depth >= 1,
        "the sender still holds the message unacked"
    );

    let (_dead, _cleared) = c.crash(HiveId(2));
    c.restart(HiveId(2));
    c.advance(8_000, 50);

    // The handler ran exactly once, before the crash. The retransmitted
    // envelope reaches the restarted hive but the journal-restored dedup
    // state suppresses it — the handler must NOT run again (the volatile
    // dictionary died with the process; that gap belongs to the crash
    // ledger, not the channel).
    assert_eq!(
        c.hive(HiveId(2)).counters().handled_ok,
        0,
        "the redelivered envelope must not re-run the handler"
    );
    assert!(
        c.hive(HiveId(2)).channel_stats().dups_suppressed >= 1,
        "the journal-restored dedup state suppressed the retransmit"
    );
    assert_eq!(
        c.hive(HiveId(1)).channel_stats().outbox_depth,
        0,
        "the suppressed redelivery was still acked"
    );

    drop(c);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sender crash with unacked messages: hive 1 relays toward hive 2 while
/// the link is cut, so the message sits journaled-but-undelivered. The
/// restarted sender replays its outbox and the message arrives exactly once
/// after the link heals.
#[test]
fn sender_crash_replays_unacked_messages_from_the_outbox() {
    let dir = storage_dir("send-crash");
    let mut c = cluster(&dir);
    c.elect_registry(120_000).unwrap();
    let bee = seed_bee_on_hive2(&mut c);
    assert_eq!(value_on_hive2(&c, bee), 1);

    c.fabric.partition(HiveId(1), HiveId(2));
    c.hive_mut(HiveId(1)).emit(Add {
        key: "k".into(),
        amount: 10,
    });
    c.advance(500, 50);
    assert_eq!(value_on_hive2(&c, bee), 1, "cut link: nothing arrived");
    assert!(c.hive(HiveId(1)).channel_stats().outbox_depth >= 1);

    let (_dead, _cleared) = c.crash(HiveId(1));
    c.restart(HiveId(1));
    assert!(
        c.hive(HiveId(1)).channel_stats().outbox_depth >= 1,
        "the journal replay restored the unacked message"
    );
    c.fabric.heal();
    c.advance(10_000, 50);

    assert_eq!(
        value_on_hive2(&c, bee),
        11,
        "the replayed message arrived exactly once"
    );
    assert_eq!(c.hive(HiveId(1)).channel_stats().outbox_depth, 0);

    drop(c);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Ack coalescing end to end: a one-way burst of N cross-hive messages is
/// covered by O(1) standalone ack frames, not N.
#[test]
fn one_way_burst_is_acked_with_o1_frames() {
    let dir = storage_dir("coalesce");
    let mut c = cluster(&dir);
    c.elect_registry(120_000).unwrap();
    let bee = seed_bee_on_hive2(&mut c);

    let acks_before = c.hive(HiveId(2)).channel_stats().acks_sent;
    for _ in 0..20 {
        c.hive_mut(HiveId(1)).emit(Add {
            key: "k".into(),
            amount: 1,
        });
    }
    c.advance(2_000, 50);

    assert_eq!(value_on_hive2(&c, bee), 21, "all 20 increments applied");
    let acks = c.hive(HiveId(2)).channel_stats().acks_sent - acks_before;
    assert!(
        (1..=3).contains(&acks),
        "20 one-way messages must coalesce to O(1) ack frames, got {acks}"
    );
    assert_eq!(c.hive(HiveId(1)).channel_stats().outbox_depth, 0);

    drop(c);
    let _ = std::fs::remove_dir_all(&dir);
}
