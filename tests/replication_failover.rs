//! Colony replication + failover: committed transactions flow to shadow
//! hives; when a hive dies, a replica promotes its shadows and the bees keep
//! serving with their state intact.

use beehive::prelude::*;
use beehive::sim::{ClusterConfig, SimCluster};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Append {
    key: String,
    item: u64,
}
beehive::core::impl_message!(Append);

fn log_app() -> App {
    App::builder("log")
        .handle::<Append>(
            |m| Mapped::cell("logs", &m.key),
            |m, ctx| {
                let mut items: Vec<u64> = ctx
                    .get("logs", &m.key)
                    .map_err(|e| e.to_string())?
                    .unwrap_or_default();
                items.push(m.item);
                ctx.put("logs", m.key.clone(), &items)
                    .map_err(|e| e.to_string())?;
                Ok(())
            },
        )
        .build()
}

fn replicated_cluster(n: usize, factor: usize) -> SimCluster {
    SimCluster::new(
        ClusterConfig {
            hives: n,
            voters: n.min(3),
            replication_factor: factor,
            ..Default::default()
        },
        |h| h.install(log_app()),
    )
}

fn owner_of(c: &SimCluster, key: &str) -> (BeeId, HiveId) {
    let cell = Cell::new("logs", key);
    for id in c.ids() {
        let mirror = c.hive(id).registry_view();
        if let Some(bee) = mirror.owner("log", &cell) {
            if let Some(h) = mirror.hive_of(bee) {
                return (bee, h);
            }
        }
    }
    panic!("no owner for {key}");
}

#[test]
fn transactions_replicate_to_shadow_hives() {
    let mut c = replicated_cluster(3, 2);
    c.elect_registry(120_000).unwrap();
    for i in 0..5 {
        c.hive_mut(HiveId(1)).emit(Append {
            key: "k".into(),
            item: i,
        });
    }
    c.advance(5_000, 50);

    let (_bee, owner) = owner_of(&c, "k");
    assert_eq!(owner, HiveId(1));
    // With factor 2, hive 2 (next in the ring after 1) holds the shadow.
    assert_eq!(
        c.hive(HiveId(2)).shadow_count(),
        1,
        "hive 2 shadows the bee"
    );
    assert!(c.hive(HiveId(1)).counters().replicated_txs >= 5);
}

#[test]
fn failover_promotes_shadow_with_full_state() {
    let mut c = replicated_cluster(4, 2);
    c.elect_registry(120_000).unwrap();
    // Bee lives on hive 4 (message origin); its replica ring successor is
    // hive 1.
    for i in 0..7 {
        c.hive_mut(HiveId(4)).emit(Append {
            key: "k".into(),
            item: i * 10,
        });
    }
    c.advance(5_000, 50);
    let (bee, owner) = owner_of(&c, "k");
    assert_eq!(owner, HiveId(4));
    assert_eq!(c.hive(HiveId(1)).shadow_count(), 1);

    // Hive 4 "dies": cut it off from everyone (it is a learner, not a
    // registry voter, so the quorum survives).
    for id in c.ids() {
        if id != HiveId(4) {
            c.fabric.partition(HiveId(4), id);
        }
    }
    c.advance(2_000, 50);

    // The deployment's failure detector fires: hive 1 recovers.
    let recovered = c.hive_mut(HiveId(1)).recover_from(HiveId(4));
    assert_eq!(recovered, 1);
    c.advance(5_000, 50);

    let mirror = c.hive(HiveId(1)).registry_view();
    assert_eq!(
        mirror.hive_of(bee),
        Some(HiveId(1)),
        "registry moved the bee"
    );
    assert_eq!(c.hive(HiveId(1)).counters().failovers, 1);
    let items: Vec<u64> = c
        .hive(HiveId(1))
        .peek_state("log", bee, "logs", "k")
        .expect("state recovered");
    assert_eq!(
        items,
        vec![0, 10, 20, 30, 40, 50, 60],
        "no committed writes lost"
    );

    // The promoted bee keeps serving — from any hive.
    c.hive_mut(HiveId(2)).emit(Append {
        key: "k".into(),
        item: 999,
    });
    c.advance(5_000, 50);
    let items: Vec<u64> = c
        .hive(HiveId(1))
        .peek_state("log", bee, "logs", "k")
        .unwrap();
    assert_eq!(items.last(), Some(&999));
}

#[test]
fn migration_keeps_replication_going() {
    let mut c = replicated_cluster(3, 2);
    c.elect_registry(120_000).unwrap();
    c.hive_mut(HiveId(1)).emit(Append {
        key: "m".into(),
        item: 1,
    });
    c.advance(3_000, 50);
    let (bee, _) = owner_of(&c, "m");

    // Move the bee to hive 3; its replica ring successor becomes hive 1.
    c.hive_mut(HiveId(1))
        .request_migration("log", bee, HiveId(1), HiveId(3));
    c.advance(3_000, 50);
    assert_eq!(owner_of(&c, "m").1, HiveId(3));

    // New writes replicate from the new owner; the gap triggers a resync on
    // the new shadow hive, after which it is consistent.
    for i in 2..=4 {
        c.hive_mut(HiveId(2)).emit(Append {
            key: "m".into(),
            item: i,
        });
        c.advance(2_000, 50);
    }
    c.advance(3_000, 50);
    assert!(
        c.hive(HiveId(1)).shadow_count() >= 1,
        "hive 1 now shadows the moved bee"
    );
    // Kill hive 3; recover on hive 1; all four items must be there.
    for id in c.ids() {
        if id != HiveId(3) {
            c.fabric.partition(HiveId(3), id);
        }
    }
    c.advance(1_000, 50);
    c.hive_mut(HiveId(1)).recover_from(HiveId(3));
    c.advance(5_000, 50);
    let items: Vec<u64> = c
        .hive(HiveId(1))
        .peek_state("log", bee, "logs", "m")
        .unwrap();
    assert_eq!(items, vec![1, 2, 3, 4]);
}
