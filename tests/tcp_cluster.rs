//! A real multi-threaded deployment: three hives over TCP on localhost,
//! each on its own thread with the system clock — the production code path
//! (no simulator involved). Runs once per TCP engine: the threaded
//! transport and the non-blocking reactor must both carry a live cluster.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use beehive::core::{Hive, HiveConfig, HiveHandle, Transport, TransportPreference};
use beehive::net::bind_tcp;
use beehive::prelude::*;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Count {
    key: String,
}
beehive::core::impl_message!(Count);

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ReadBack {
    key: String,
}
beehive::core::impl_message!(ReadBack);

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Answer {
    key: String,
    value: u64,
    hive: u32,
}
beehive::core::impl_message!(Answer);

fn counter(answers: Arc<Mutex<Vec<Answer>>>) -> App {
    App::builder("counter")
        .handle::<Count>(
            |m| Mapped::cell("c", &m.key),
            |m, ctx| {
                let n: u64 = ctx
                    .get("c", &m.key)
                    .map_err(|e| e.to_string())?
                    .unwrap_or(0);
                ctx.put("c", m.key.clone(), &(n + 1))
                    .map_err(|e| e.to_string())?;
                Ok(())
            },
        )
        .handle::<ReadBack>(
            |m| Mapped::cell("c", &m.key),
            move |m, ctx| {
                let n: u64 = ctx
                    .get("c", &m.key)
                    .map_err(|e| e.to_string())?
                    .unwrap_or(0);
                ctx.emit(Answer {
                    key: m.key.clone(),
                    value: n,
                    hive: ctx.hive().0,
                });
                Ok(())
            },
        )
        .handle::<Answer>(|_m| Mapped::LocalSingleton, {
            move |m, _ctx| {
                answers.lock().push(m.clone());
                Ok(())
            }
        })
        .build()
}

fn run_cluster(pref: TransportPreference) {
    let n = 3u32;
    // Bind everyone on port 0 first, then exchange addresses.
    let mut transports = Vec::new();
    for i in 1..=n {
        let (t, addr, _counters) = bind_tcp(
            pref,
            HiveId(i),
            "127.0.0.1:0".parse().unwrap(),
            HashMap::new(),
        )
        .unwrap();
        transports.push((HiveId(i), t, addr));
    }
    let addrs: Vec<_> = transports
        .iter()
        .map(|(id, _, addr)| (*id, *addr))
        .collect();
    for (id, t, _) in transports.iter_mut() {
        for (peer, addr) in &addrs {
            if *peer != *id {
                t.connect_peer(*peer, &addr.to_string());
            }
        }
    }

    let all: Vec<HiveId> = (1..=n).map(HiveId).collect();
    let answers = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles: Vec<HiveHandle> = Vec::new();
    let mut threads = Vec::new();

    for (id, transport, _) in transports {
        let mut cfg = HiveConfig::clustered(id, all.clone(), 3);
        cfg.tick_interval_ms = 0;
        cfg.raft_tick_ms = 5;
        cfg.pending_retry_ms = 200;
        cfg.transport = pref;
        let mut hive = Hive::new(cfg, Arc::new(SystemClock::new()), transport);
        hive.install(counter(answers.clone()));
        handles.push(hive.handle());
        let stop2 = stop.clone();
        threads.push(std::thread::spawn(move || {
            hive.run(&stop2);
            hive
        }));
    }

    // Give the registry group a moment to elect.
    std::thread::sleep(std::time::Duration::from_millis(500));

    // The same key from every hive must land on one bee.
    for h in &handles {
        h.emit(Count { key: "k".into() });
        h.emit(Count { key: "k".into() });
    }
    // Wait, then read back through a different hive than the writer.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    let mut value = 0;
    while std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(200));
        handles[2].emit(ReadBack { key: "k".into() });
        std::thread::sleep(std::time::Duration::from_millis(200));
        if let Some(a) = answers.lock().last() {
            value = a.value;
            if value == 6 {
                break;
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    let hives: Vec<Hive> = threads.into_iter().map(|t| t.join().unwrap()).collect();

    assert_eq!(value, 6, "all six increments must reach the single bee");
    let total_bees: usize = hives.iter().map(|h| h.local_bee_count("counter")).sum();
    // One cell bee for "k" plus up to one LocalSingleton Answer bee per hive.
    let cell_bees: usize = hives
        .iter()
        .flat_map(|h| h.local_bees("counter"))
        .filter(|&(_, cells)| cells > 0)
        .count();
    assert_eq!(
        cell_bees, 1,
        "exactly one colony for key k (got {total_bees} bees total)"
    );
}

#[test]
fn three_hives_over_tcp_route_consistently() {
    run_cluster(TransportPreference::Threaded);
}

#[test]
fn three_hives_over_reactor_route_consistently() {
    run_cluster(TransportPreference::Reactor);
}
