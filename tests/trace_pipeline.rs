//! End-to-end observability over a two-hive cluster: a three-stage message
//! chain whose middle hops live on the other hive, proving that (a) the
//! causal [`beehive::core::TraceContext`] survives local emits *and* the
//! wire, (b) the chrome-trace export of the merged spans is valid JSON, and
//! (c) per-(app, message type) latency histograms flow through the collector
//! into [`beehive::core::Analytics`] and its Prometheus exposition with
//! counts matching the handlers that actually ran.

use std::collections::BTreeSet;
use std::sync::Arc;

use beehive::core::{
    chrome_trace, chrome_trace_merged, collector_app, Analytics, HiveMetrics, TraceSpan,
};
use beehive::prelude::*;
use beehive::sim::{ClusterConfig, SimCluster};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Hop {
    stage: u8,
    key: String,
}
beehive::core::impl_message!(Hop);

/// A TE-style pipeline: stage 0 → 1 → 2, each stage a distinct cell so each
/// gets its own bee (and can live on its own hive).
fn chain_app() -> App {
    App::builder("chain")
        .handle::<Hop>(
            |m| {
                let dict = match m.stage {
                    0 => "s0",
                    1 => "s1",
                    _ => "s2",
                };
                Mapped::cell(dict, &m.key)
            },
            |m, ctx| {
                if m.stage < 2 {
                    ctx.emit(Hop {
                        stage: m.stage + 1,
                        key: m.key.clone(),
                    });
                }
                Ok(())
            },
        )
        .build()
}

/// Minimal JSON syntax checker (no serde_json in-tree): parses one value and
/// requires the input to be fully consumed.
fn check_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    parse_value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing bytes at {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<(), String> {
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, i);
                parse_string(b, i)?;
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected ':' at {i}"));
                }
                *i += 1;
                parse_value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at {i}")),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(());
            }
            loop {
                parse_value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at {i}")),
                }
            }
        }
        Some(b'"') => parse_string(b, i),
        Some(b't') => parse_lit(b, i, "true"),
        Some(b'f') => parse_lit(b, i, "false"),
        Some(b'n') => parse_lit(b, i, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            *i += 1;
            while b.get(*i).is_some_and(|c| {
                c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
            }) {
                *i += 1;
            }
            Ok(())
        }
        _ => Err(format!("unexpected byte at {i}")),
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<(), String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected string at {i}"));
    }
    *i += 1;
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => *i += 2,
            _ => *i += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_lit(b: &[u8], i: &mut usize, lit: &str) -> Result<(), String> {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at {i}"))
    }
}

#[test]
fn traces_cross_hives_and_latency_reaches_prometheus() {
    let reports: Arc<Mutex<Vec<HiveMetrics>>> = Arc::new(Mutex::new(Vec::new()));
    let r2 = reports.clone();
    let mut c = SimCluster::new(
        ClusterConfig {
            hives: 2,
            voters: 2,
            tick_interval_ms: 1000,
            ..Default::default()
        },
        move |h| {
            h.install(chain_app());
            let instr = h.instrumentation();
            h.install(collector_app(instr));
            let r3 = r2.clone();
            h.install(
                App::builder("capture")
                    .handle::<HiveMetrics>(
                        |_m| Mapped::LocalSingleton,
                        move |m, _c| {
                            r3.lock().push(m.clone());
                            Ok(())
                        },
                    )
                    .build(),
            );
        },
    );
    c.elect_registry(120_000).unwrap();

    // Warm-up: run stages 1→2 from hive 2 so their cells are claimed there;
    // the traced run below must then cross the wire to reach them.
    c.hive_mut(HiveId(2)).emit(Hop {
        stage: 1,
        key: "k".into(),
    });
    c.advance(2_000, 50);

    // The traced run starts at stage 0 on hive 1.
    c.hive_mut(HiveId(1)).emit(Hop {
        stage: 0,
        key: "k".into(),
    });
    c.advance(5_000, 50);

    let h1 = c.hive(HiveId(1)).tracer().snapshot();
    let h2 = c.hive(HiveId(2)).tracer().snapshot();

    // (a) one trace id spans both hives, with intact parent links.
    let root = h1
        .iter()
        .find(|s| s.app == "chain" && s.parent_span == 0)
        .expect("root chain span recorded on hive 1")
        .clone();
    let mut spans: Vec<TraceSpan> = h1
        .iter()
        .chain(h2.iter())
        .filter(|s| s.trace_id == root.trace_id)
        .cloned()
        .collect();
    spans.sort_by_key(|s| s.span_id);
    assert!(spans.len() >= 3, "three chain stages traced: {spans:?}");
    let hives: BTreeSet<u32> = spans.iter().map(|s| s.hive.0).collect();
    assert_eq!(hives.len(), 2, "the trace crosses both hives: {spans:?}");
    for s in &spans {
        assert!(
            s.parent_span == 0 || spans.iter().any(|p| p.span_id == s.parent_span),
            "span {s:?} has a dangling parent"
        );
    }

    // (b) the merged chrome-trace export is valid JSON with >= 3 linked events.
    let json = chrome_trace(&spans, root.trace_id);
    check_json(&json).expect("chrome trace is valid JSON");
    assert!(json.matches("\"ph\":\"X\"").count() >= 3, "trace: {json}");
    assert!(
        json.contains(&format!("\"parent\":{}", root.span_id)),
        "root's child links back to it: {json}"
    );

    // (b') the cross-hive merge view: one chrome-trace document with a
    // process lane (metadata event) per hive and the causal links intact.
    let merged = chrome_trace_merged(&spans, root.trace_id);
    check_json(&merged).expect("merged chrome trace is valid JSON");
    assert!(merged.contains("\"traceEvents\""), "merged: {merged}");
    assert_eq!(
        merged.matches("\"ph\":\"M\"").count(),
        2,
        "one process_name lane per hive: {merged}"
    );
    assert!(merged.contains("\"name\":\"hive-1\""), "merged: {merged}");
    assert!(merged.contains("\"name\":\"hive-2\""), "merged: {merged}");
    assert!(
        merged.matches("\"ph\":\"X\"").count() >= 3,
        "all three chain stages present in the merge: {merged}"
    );
    let linked = spans
        .iter()
        .filter(|s| s.parent_span != 0 && spans.iter().any(|p| p.span_id == s.parent_span))
        .count();
    assert!(
        linked >= 2,
        "root plus >=2 causally linked children (got {linked}): {spans:?}"
    );

    // (c) latency histograms reach the Prometheus exposition with counts
    // matching the chain handlers that actually ran (warm-up + traced run).
    let mut analytics = Analytics::new();
    for w in reports.lock().iter() {
        analytics.ingest(w);
    }
    let chain_runs = h1
        .iter()
        .chain(h2.iter())
        .filter(|s| s.app == "chain")
        .count();
    assert!(
        chain_runs >= 5,
        "warm-up (2) + traced run (3): {chain_runs}"
    );
    let text = analytics.render_prometheus();
    let runtime_count =
        format!("beehive_handler_runtime_seconds_count{{app=\"chain\",msg=\"Hop\"}} {chain_runs}");
    assert!(
        text.contains(&runtime_count),
        "missing {runtime_count:?} in:\n{text}"
    );
    let wait_count =
        format!("beehive_queue_wait_seconds_count{{app=\"chain\",msg=\"Hop\"}} {chain_runs}");
    assert!(
        text.contains(&wait_count),
        "missing {wait_count:?} in:\n{text}"
    );
    assert!(
        analytics.p99_runtime_us("chain").is_some(),
        "p99 available to feedback/optimizer"
    );
}
